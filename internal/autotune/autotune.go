// Package autotune implements the autotuner of §6.1: given a concurrent
// benchmark (a training workload), it enumerates legal representations —
// decomposition structure × lock placement × striping factor × container
// selection, with container choices constrained by the placement exactly
// as the paper prescribes ("if the chosen lock placement serializes access
// to an edge, the autotuner picks a non-concurrent container, whereas if
// concurrent access … is permitted … it chooses a concurrency-safe
// container") — and ranks them by measured throughput.
//
// Enumeration is per index side: the stick has one side, the split and the
// diamond have a src side and a dst side that may be configured
// independently (§6.2's Split 2 mixes a striped concurrent side with a
// coarse side). Each side chooses a placement scheme — coarse (one root
// lock), fine (per-node locks), striped with factor 1 or 1024, and for
// the diamond speculative targets — and the container pair the scheme
// permits.
package autotune

import (
	"fmt"
	"sort"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graphreps"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/workload"
)

// Candidate is one representation the autotuner can measure.
type Candidate struct {
	Name        string
	Family      string
	Description string
	Build       func() (*core.Relation, error)
}

// sideScheme is a per-side placement choice.
type sideScheme int

const (
	sideCoarse sideScheme = iota
	sideFine
	sideStriped1
	sideStriped1024
	sideSpeculative
)

func (s sideScheme) String() string {
	switch s {
	case sideCoarse:
		return "coarse"
	case sideFine:
		return "fine"
	case sideStriped1:
		return "striped(1)"
	case sideStriped1024:
		return "striped(1024)"
	default:
		return "speculative"
	}
}

// sideChoice pairs a scheme with the container kinds it permits.
type sideChoice struct {
	scheme   sideScheme
	top, mid container.Kind
}

var nonConcurrent = []container.Kind{container.HashMap, container.TreeMap}
var concurrent = []container.Kind{container.ConcurrentHashMap, container.ConcurrentSkipListMap}

// sideChoices enumerates the legal (scheme, top, mid) triples for one
// side. Mid-level containers sit under a single per-instance lock in
// every scheme, so they are always non-concurrent; top-level containers
// must be concurrency-safe exactly when the scheme admits concurrent
// access to them (striped with k>1, speculative).
func sideChoices(allowSpec bool) []sideChoice {
	var out []sideChoice
	add := func(s sideScheme, tops []container.Kind) {
		for _, top := range tops {
			for _, mid := range nonConcurrent {
				out = append(out, sideChoice{scheme: s, top: top, mid: mid})
			}
		}
	}
	add(sideCoarse, nonConcurrent)
	add(sideFine, nonConcurrent)
	add(sideStriped1, nonConcurrent)
	add(sideStriped1024, concurrent)
	if allowSpec {
		add(sideSpeculative, concurrent)
	}
	return out
}

func (c sideChoice) String() string {
	return fmt.Sprintf("%s/%s-of-%s", c.scheme, c.top, c.mid)
}

// applySide configures placement rules for one side's edges: top is the
// root out-edge, rest are the descendant edges of that side (excluding any
// shared cell, handled by the caller).
func applySide(p *locks.Placement, d *decomp.Decomposition, top *decomp.Edge, rest []*decomp.Edge, c sideChoice) {
	switch c.scheme {
	case sideCoarse:
		p.Place(top, d.Root)
		for _, e := range rest {
			p.Place(e, d.Root)
		}
	case sideFine:
		// NewPlacement default: at source.
	case sideStriped1:
		// Striping factor 1: a single root lock serializes the top
		// container (stripe 0 of the shared root array, whatever its
		// size); lower edges stay fine. Distinct from sideCoarse, which
		// also moves the lower edges under the root lock.
		p.Place(top, d.Root)
	case sideStriped1024:
		if graphreps.StripeFactor > p.StripeCount(d.Root) {
			p.SetStripes(d.Root, graphreps.StripeFactor)
		}
		p.Place(top, d.Root, top.Cols...)
		// rest stay fine.
	case sideSpeculative:
		if graphreps.StripeFactor > p.StripeCount(d.Root) {
			p.SetStripes(d.Root, graphreps.StripeFactor)
		}
		p.PlaceSpeculative(top, d.Root, top.Cols...)
	}
}

// EnumerateGraph enumerates every legal representation of the directed
// graph relation over the three Figure 3 structures. The paper's run
// produced 448 variants; our per-side enumeration (which additionally
// allows asymmetric speculative diamonds) produces a slightly larger
// space — EnumerateGraph's exact count is asserted in tests and recorded
// in EXPERIMENTS.md.
func EnumerateGraph() []Candidate {
	var out []Candidate

	// Stick: one side.
	for _, c := range sideChoices(false) {
		c := c
		out = append(out, Candidate{
			Name:        fmt.Sprintf("stick[%s]", c),
			Family:      "stick",
			Description: c.String(),
			Build: func() (*core.Relation, error) {
				d, err := graphreps.Stick(c.top, c.mid)
				if err != nil {
					return nil, err
				}
				p := locks.NewPlacement(d)
				applySide(p, d, d.EdgeByName("ρu"), []*decomp.Edge{d.EdgeByName("uv"), d.EdgeByName("vw")}, c)
				if err := p.Validate(); err != nil {
					return nil, err
				}
				return core.Synthesize(d, p)
			},
		})
	}

	// Split: two independent sides.
	for _, l := range sideChoices(false) {
		for _, r := range sideChoices(false) {
			l, r := l, r
			out = append(out, Candidate{
				Name:        fmt.Sprintf("split[%s|%s]", l, r),
				Family:      "split",
				Description: fmt.Sprintf("src side %s, dst side %s", l, r),
				Build: func() (*core.Relation, error) {
					d, err := graphreps.Split(l.top, l.mid, r.top, r.mid)
					if err != nil {
						return nil, err
					}
					p := locks.NewPlacement(d)
					applySide(p, d, d.EdgeByName("ρu"), []*decomp.Edge{d.EdgeByName("uw"), d.EdgeByName("wx")}, l)
					applySide(p, d, d.EdgeByName("ρv"), []*decomp.Edge{d.EdgeByName("vy"), d.EdgeByName("yz")}, r)
					if err := p.Validate(); err != nil {
						return nil, err
					}
					return core.Synthesize(d, p)
				},
			})
		}
	}

	// Diamond: two sides sharing the per-edge node; speculative allowed.
	for _, l := range sideChoices(true) {
		for _, r := range sideChoices(true) {
			l, r := l, r
			out = append(out, Candidate{
				Name:        fmt.Sprintf("diamond[%s|%s]", l, r),
				Family:      "diamond",
				Description: fmt.Sprintf("src side %s, dst side %s", l, r),
				Build: func() (*core.Relation, error) {
					d, err := graphreps.Diamond(l.top, l.mid, r.top, r.mid)
					if err != nil {
						return nil, err
					}
					p := locks.NewPlacement(d)
					applySide(p, d, d.EdgeByName("ρx"), []*decomp.Edge{d.EdgeByName("xz")}, l)
					applySide(p, d, d.EdgeByName("ρy"), []*decomp.Edge{d.EdgeByName("yz")}, r)
					// The shared weight cell: at the shared node unless
					// both sides are coarse (then everything sits under
					// the root lock, the pure ψ1 of Figure 3(a)).
					if l.scheme == sideCoarse && r.scheme == sideCoarse {
						p.Place(d.EdgeByName("zw"), d.Root)
					}
					if err := p.Validate(); err != nil {
						return nil, err
					}
					return core.Synthesize(d, p)
				},
			})
		}
	}
	return out
}

// Scored is a candidate with its tuning measurements.
type Scored struct {
	Candidate
	// Static is the planner's cost estimate for the training mix (lower
	// is better); NaN when not computed.
	Static float64
	// Result is the measured training run (zero when only statically
	// ranked).
	Result workload.Result
}

// StaticCost estimates a mix-weighted plan cost for a built relation: the
// §5.2 cost model applied to the four benchmark operations, weighted by
// the mix. It is the "static" half of the paper's static + dynamic search
// (§8).
func StaticCost(r *core.Relation, mix workload.Mix) (float64, error) {
	return staticCost(r, mix, nil)
}

// StaticBatchCost is StaticCost under a batch profile: every plan is
// costed with its BatchCost — the per-member estimate with the lock
// portion amortized over the profile's members and discounted by its
// read fraction — instead of the standalone Cost. It is the batch-aware
// planner pass: a representation whose lock schedule coalesces well
// (all-stripe rounds, shared prefixes) ranks better under a batch-heavy
// profile than the standalone model would suggest.
func StaticBatchCost(r *core.Relation, mix workload.Mix, prof query.BatchProfile) (float64, error) {
	return staticCost(r, mix, &prof)
}

func staticCost(r *core.Relation, mix workload.Mix, prof *query.BatchProfile) (float64, error) {
	pl := query.NewPlanner(r.Decomposition(), r.Placement())
	planCost := func(p *query.Plan) float64 {
		if prof != nil {
			return p.BatchCost(*prof)
		}
		return p.Cost
	}
	mutCost := func(m *query.MutationPlan) float64 {
		if prof != nil {
			return m.BatchCost(*prof)
		}
		return m.Cost
	}
	succ, err := pl.PlanQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		return 0, err
	}
	pred, err := pl.PlanQuery([]string{"dst"}, []string{"src", "weight"})
	if err != nil {
		return 0, err
	}
	ins, err := pl.PlanMutation(query.OpInsert, []string{"dst", "src"})
	if err != nil {
		return 0, err
	}
	rem, err := pl.PlanMutation(query.OpRemove, []string{"dst", "src"})
	if err != nil {
		return 0, err
	}
	// The insert also runs its existence query.
	insCost := mutCost(ins)
	exist, err := pl.PlanQuery([]string{"dst", "src"}, r.Spec().Columns)
	if err == nil {
		insCost += planCost(exist)
	}
	total := float64(mix.Successors)*planCost(succ) +
		float64(mix.Predecessors)*planCost(pred) +
		float64(mix.Inserts)*insCost +
		float64(mix.Removes)*mutCost(rem)
	return total / 100, nil
}

// Options tunes the search.
type Options struct {
	// TopStatic, when positive, statically ranks all candidates with the
	// cost model first and only measures the cheapest TopStatic of them —
	// the static/dynamic split of §8.
	TopStatic int
	// Batch, when non-nil, makes the static ranking batch-aware: every
	// candidate is costed with StaticBatchCost under this profile instead
	// of the standalone StaticCost, so the TopStatic cut keeps the
	// representations whose compiled lock schedules coalesce best for the
	// expected batch shape.
	Batch *query.BatchProfile
}

// Tune measures every candidate under the training configuration and
// returns them sorted by descending throughput. Candidates that fail to
// build (illegal combinations) are skipped.
func Tune(cands []Candidate, cfg workload.Config, opts Options) ([]Scored, error) {
	scored := make([]Scored, 0, len(cands))
	for _, c := range cands {
		r, err := c.Build()
		if err != nil {
			continue
		}
		s := Scored{Candidate: c}
		var sc float64
		if opts.Batch != nil {
			sc, err = StaticBatchCost(r, cfg.Mix, *opts.Batch)
		} else {
			sc, err = StaticCost(r, cfg.Mix)
		}
		if err == nil {
			s.Static = sc
		}
		scored = append(scored, s)
	}
	if len(scored) == 0 {
		return nil, fmt.Errorf("autotune: no buildable candidates")
	}
	if opts.TopStatic > 0 && opts.TopStatic < len(scored) {
		sort.Slice(scored, func(i, j int) bool { return scored[i].Static < scored[j].Static })
		scored = scored[:opts.TopStatic]
	}
	for i := range scored {
		r, err := scored[i].Build()
		if err != nil {
			return nil, err
		}
		scored[i].Result = workload.Run(workload.MustRelationGraph(r), cfg)
	}
	sort.Slice(scored, func(i, j int) bool {
		return scored[i].Result.Throughput > scored[j].Result.Throughput
	})
	return scored, nil
}
