package autotune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/workload"
)

func TestEnumerateGenericBuildsAndBehaves(t *testing.T) {
	cands, err := EnumerateGeneric(workload.GraphSpec(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no generic candidates")
	}
	built := 0
	for _, c := range cands {
		r, err := c.Build()
		if err != nil {
			continue // some placement/container combos are legally skipped
		}
		built++
		// Differential smoke against the reference.
		ref := core.NewReference(workload.GraphSpec())
		steps := []struct {
			s, t rel.Tuple
		}{
			{rel.T("src", 1, "dst", 2), rel.T("weight", 10)},
			{rel.T("src", 1, "dst", 3), rel.T("weight", 11)},
			{rel.T("src", 2, "dst", 3), rel.T("weight", 12)},
			{rel.T("src", 1, "dst", 2), rel.T("weight", 99)}, // dup
		}
		for _, st := range steps {
			got, err := r.Insert(st.s, st.t)
			if err != nil {
				t.Fatalf("%s: insert: %v", c.Name, err)
			}
			want, _ := ref.Insert(st.s, st.t)
			if got != want {
				t.Fatalf("%s: insert %v: got %v want %v", c.Name, st.s, got, want)
			}
		}
		for _, q := range []rel.Tuple{rel.T("src", 1), rel.T("dst", 3), rel.T("src", 2, "dst", 3)} {
			got, err := r.Query(q, "dst", "src", "weight")
			if err != nil {
				t.Fatalf("%s: query: %v", c.Name, err)
			}
			want, _ := ref.Query(q, "dst", "src", "weight")
			if len(got) != len(want) {
				t.Fatalf("%s: query %v: got %d results want %d", c.Name, q, len(got), len(want))
			}
		}
		if ok, err := r.Remove(rel.T("src", 1, "dst", 2)); err != nil || !ok {
			t.Fatalf("%s: remove: %v %v", c.Name, ok, err)
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
	if built < len(cands)/2 {
		t.Fatalf("only %d/%d generic candidates built", built, len(cands))
	}
	t.Logf("generic candidates: %d enumerated, %d legal", len(cands), built)
}

func TestGenericCandidatesTunable(t *testing.T) {
	cands, err := EnumerateGeneric(workload.GraphSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{Threads: 1, OpsPerThread: 150, KeySpace: 16, Seed: 2,
		Mix: workload.Figure5Mixes()[1]}
	scored, err := Tune(cands, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) == 0 {
		t.Fatal("nothing tuned")
	}
}
