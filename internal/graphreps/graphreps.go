// Package graphreps constructs the directed-graph representations of the
// paper's evaluation (§4.3, §6.2): the stick, split and diamond
// decomposition families of Figure 3, the lock placements ψ1 (coarse), ψ2
// (fine), ψ3 (striped) and ψ4 (speculative), and the twelve named variants
// plotted in Figure 5.
package graphreps

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Spec returns the directed-graph relational specification
// {src, dst, weight | src,dst → weight} of §2.
func Spec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// StripeFactor is the paper's large striping factor (§6.2 uses 1 or 1024).
const StripeFactor = 1024

// Stick builds the Figure 3(a) decomposition, ρ→u{src}→v{dst}→w{weight}:
// a map of maps plus a singleton weight cell. Successor queries are
// direct; predecessor queries must scan every edge.
func Stick(top, mid container.Kind) (*decomp.Decomposition, error) {
	return decomp.NewBuilder(Spec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, top).
		Edge("uv", "u", "v", []string{"dst"}, mid).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
}

// Split builds the Figure 3(b) decomposition: two independent stick-shaped
// indexes, one keyed by src (for successors) and one keyed by dst (for
// predecessors), with no node sharing.
func Split(topL, midL, topR, midR container.Kind) (*decomp.Decomposition, error) {
	return decomp.NewBuilder(Spec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, topL).
		Edge("uw", "u", "w", []string{"dst"}, midL).
		Edge("wx", "w", "x", []string{"weight"}, container.Cell).
		Edge("ρv", "ρ", "v", []string{"dst"}, topR).
		Edge("vy", "v", "y", []string{"src"}, midR).
		Edge("yz", "y", "z", []string{"weight"}, container.Cell).
		Build()
}

// Diamond builds the Figure 3(c) decomposition: src and dst indexes that
// share the per-edge node z (and its weight cell).
func Diamond(topL, midL, topR, midR container.Kind) (*decomp.Decomposition, error) {
	return decomp.NewBuilder(Spec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"src"}, topL).
		Edge("ρy", "ρ", "y", []string{"dst"}, topR).
		Edge("xz", "x", "z", []string{"dst"}, midL).
		Edge("yz", "y", "z", []string{"src"}, midR).
		Edge("zw", "z", "w", []string{"weight"}, container.Cell).
		Build()
}

// PlacementScheme selects one of the paper's placement families for the
// top-level edges of a graph decomposition; lower edges are always placed
// at their source (which a single lock per node instance serializes).
type PlacementScheme int

const (
	// Coarse is ψ1: one lock at the root protects everything.
	Coarse PlacementScheme = iota
	// Fine is ψ2: every edge protected by one lock at its source node.
	Fine
	// Striped is ψ3: the top-level edges are striped across StripeFactor
	// locks at the root by their key column; lower edges are fine.
	Striped
	// Speculative is ψ4: top-level edges lock their targets speculatively
	// with striped root fallbacks; lower edges are fine. Requires
	// concurrency-safe top containers with linearizable reads.
	Speculative
)

// String names the scheme after the paper's placements.
func (s PlacementScheme) String() string {
	switch s {
	case Coarse:
		return "coarse(ψ1)"
	case Fine:
		return "fine(ψ2)"
	case Striped:
		return "striped(ψ3)"
	case Speculative:
		return "speculative(ψ4)"
	default:
		return fmt.Sprintf("PlacementScheme(%d)", int(s))
	}
}

// Place builds the placement for a graph decomposition: scheme applied to
// the root's out-edges with the given stripe factor, everything else fine.
func Place(d *decomp.Decomposition, scheme PlacementScheme, stripes int) (*locks.Placement, error) {
	p := locks.NewPlacement(d) // fine default
	switch scheme {
	case Coarse:
		for _, e := range d.Edges {
			p.Place(e, d.Root)
		}
	case Fine:
		// default
	case Striped:
		p.SetStripes(d.Root, stripes)
		for _, e := range d.Root.Out {
			p.Place(e, d.Root, e.Cols...)
		}
	case Speculative:
		p.SetStripes(d.Root, stripes)
		for _, e := range d.Root.Out {
			p.PlaceSpeculative(e, d.Root, e.Cols...)
		}
	default:
		return nil, fmt.Errorf("graphreps: unknown scheme %d", int(scheme))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Variant names one concrete representation: a decomposition family, a
// container assignment and a placement scheme.
type Variant struct {
	// Name is the Figure 5 series label, e.g. "Split 3".
	Name string
	// Family is "stick", "split" or "diamond".
	Family string
	// Description summarizes the containers and placement.
	Description string
	// Build synthesizes a fresh relation for this variant.
	Build func() (*core.Relation, error)
}

func mk(name, family, desc string, build func() (*core.Relation, error)) Variant {
	return Variant{Name: name, Family: family, Description: desc, Build: build}
}

func synth(d *decomp.Decomposition, err error, scheme PlacementScheme, stripes int) (*core.Relation, error) {
	if err != nil {
		return nil, err
	}
	p, err := Place(d, scheme, stripes)
	if err != nil {
		return nil, err
	}
	return core.Synthesize(d, p)
}

// Figure5Variants returns the twelve representative decompositions of
// Figure 5, as described in §6.2:
//
//	Stick 1 / Split 1 / Diamond 0 — single coarse lock over a HashMap of
//	    TreeMaps (the coarsely-locked baselines; the paper's text labels
//	    the coarse diamond inconsistently, we call it Diamond 0);
//	Stick 2/3/4 — striped root lock over ConcurrentHashMap of HashMap,
//	    ConcurrentHashMap of TreeMap, ConcurrentSkipListMap of HashMap;
//	Split 2 — striped locks and concurrent maps on the src side, one
//	    coarse lock over the dst side;
//	Split 3/4 — ConcurrentHashMap of HashMap / of TreeMap, striped;
//	Split 5 — ConcurrentSkipListMap of HashMap, striped;
//	Diamond 1/2 — the sharing counterparts of Split 3/5.
func Figure5Variants() []Variant {
	k := StripeFactor
	return []Variant{
		mk("Stick 1", "stick", "coarse; HashMap of TreeMap", func() (*core.Relation, error) {
			d, err := Stick(container.HashMap, container.TreeMap)
			return synth(d, err, Coarse, 1)
		}),
		mk("Stick 2", "stick", "striped root; ConcurrentHashMap of HashMap", func() (*core.Relation, error) {
			d, err := Stick(container.ConcurrentHashMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
		mk("Stick 3", "stick", "striped root; ConcurrentHashMap of TreeMap", func() (*core.Relation, error) {
			d, err := Stick(container.ConcurrentHashMap, container.TreeMap)
			return synth(d, err, Striped, k)
		}),
		mk("Stick 4", "stick", "striped root; ConcurrentSkipListMap of HashMap", func() (*core.Relation, error) {
			d, err := Stick(container.ConcurrentSkipListMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
		mk("Split 1", "split", "coarse; HashMap of TreeMap", func() (*core.Relation, error) {
			d, err := Split(container.HashMap, container.TreeMap, container.HashMap, container.TreeMap)
			return synth(d, err, Coarse, 1)
		}),
		mk("Split 2", "split", "striped ConcurrentHashMap src side; coarse dst side", func() (*core.Relation, error) {
			d, err := Split(container.ConcurrentHashMap, container.HashMap, container.HashMap, container.TreeMap)
			if err != nil {
				return nil, err
			}
			p := locks.NewPlacement(d)
			p.SetStripes(d.Root, k)
			p.Place(d.EdgeByName("ρu"), d.Root, "src")
			// dst side under one coarse (root, stripe-0) lock.
			p.Place(d.EdgeByName("ρv"), d.Root)
			p.Place(d.EdgeByName("vy"), d.Root)
			p.Place(d.EdgeByName("yz"), d.Root)
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return core.Synthesize(d, p)
		}),
		mk("Split 3", "split", "striped root; ConcurrentHashMap of HashMap", func() (*core.Relation, error) {
			d, err := Split(container.ConcurrentHashMap, container.HashMap, container.ConcurrentHashMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
		mk("Split 4", "split", "striped root; ConcurrentHashMap of TreeMap", func() (*core.Relation, error) {
			d, err := Split(container.ConcurrentHashMap, container.TreeMap, container.ConcurrentHashMap, container.TreeMap)
			return synth(d, err, Striped, k)
		}),
		mk("Split 5", "split", "striped root; ConcurrentSkipListMap of HashMap", func() (*core.Relation, error) {
			d, err := Split(container.ConcurrentSkipListMap, container.HashMap, container.ConcurrentSkipListMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
		mk("Diamond 0", "diamond", "coarse; HashMap of TreeMap", func() (*core.Relation, error) {
			d, err := Diamond(container.HashMap, container.TreeMap, container.HashMap, container.TreeMap)
			return synth(d, err, Coarse, 1)
		}),
		mk("Diamond 1", "diamond", "striped root; ConcurrentHashMap of HashMap", func() (*core.Relation, error) {
			d, err := Diamond(container.ConcurrentHashMap, container.HashMap, container.ConcurrentHashMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
		mk("Diamond 2", "diamond", "striped root; ConcurrentSkipListMap of HashMap", func() (*core.Relation, error) {
			d, err := Diamond(container.ConcurrentSkipListMap, container.HashMap, container.ConcurrentSkipListMap, container.HashMap)
			return synth(d, err, Striped, k)
		}),
	}
}

// SpeculativeDiamond returns the ψ4 variant of Figure 3(c) — a mixture of
// speculatively locked concurrent containers and plain containers — used
// by the speculative-locking ablation.
func SpeculativeDiamond() Variant {
	return mk("Diamond Spec", "diamond", "speculative targets, striped fallback; ConcurrentHashMap of TreeMap",
		func() (*core.Relation, error) {
			d, err := Diamond(container.ConcurrentHashMap, container.TreeMap, container.ConcurrentHashMap, container.TreeMap)
			return synth(d, err, Speculative, StripeFactor)
		})
}

// LockFreeReadStick returns the stick representation whose containers are
// all concurrency-safe — ConcurrentHashMap of ConcurrentSkipListMap under
// a striped root — making the relation OptimisticCapable: read-only
// batches against it validate epochs instead of taking shared locks. It
// is the representation the optimistic benchmark (crsbench -optimistic)
// measures.
func LockFreeReadStick() Variant {
	return mk("Stick LF", "stick", "striped root; ConcurrentHashMap of ConcurrentSkipListMap (optimistic-capable)",
		func() (*core.Relation, error) {
			d, err := Stick(container.ConcurrentHashMap, container.ConcurrentSkipListMap)
			return synth(d, err, Striped, StripeFactor)
		})
}

// extraVariants lists the named representations beyond the twelve Figure 5
// series: the speculative ablation and the optimistic-capable stick.
func extraVariants() []Variant {
	return []Variant{SpeculativeDiamond(), LockFreeReadStick()}
}

// VariantByName returns the named variant among Figure5Variants,
// SpeculativeDiamond and LockFreeReadStick, or an error.
func VariantByName(name string) (Variant, error) {
	for _, v := range append(Figure5Variants(), extraVariants()...) {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("graphreps: unknown variant %q", name)
}
