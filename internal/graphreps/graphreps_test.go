package graphreps

import (
	"testing"

	"repro/internal/container"
	"repro/internal/rel"
)

func TestFigure5VariantNames(t *testing.T) {
	vs := Figure5Variants()
	if len(vs) != 12 {
		t.Fatalf("Figure 5 has 12 decompositions, got %d", len(vs))
	}
	want := []string{"Stick 1", "Stick 2", "Stick 3", "Stick 4",
		"Split 1", "Split 2", "Split 3", "Split 4", "Split 5",
		"Diamond 0", "Diamond 1", "Diamond 2"}
	for i, v := range vs {
		if v.Name != want[i] {
			t.Errorf("variant %d = %s, want %s", i, v.Name, want[i])
		}
	}
}

func TestAllVariantsSynthesizeAndWork(t *testing.T) {
	vs := append(Figure5Variants(), extraVariants()...)
	for _, v := range vs {
		t.Run(v.Name, func(t *testing.T) {
			r, err := v.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			// Smoke the four benchmark operations.
			if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err != nil || !ok {
				t.Fatalf("insert: %v %v", ok, err)
			}
			if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 9)); err != nil || ok {
				t.Fatalf("dup insert: %v %v", ok, err)
			}
			succ, err := r.Query(rel.T("src", 1), "dst", "weight")
			if err != nil || len(succ) != 1 {
				t.Fatalf("succ: %v %v", succ, err)
			}
			pred, err := r.Query(rel.T("dst", 2), "src", "weight")
			if err != nil || len(pred) != 1 {
				t.Fatalf("pred: %v %v", pred, err)
			}
			if ok, err := r.Remove(rel.T("src", 1, "dst", 2)); err != nil || !ok {
				t.Fatalf("remove: %v %v", ok, err)
			}
			if _, err := r.VerifyWellFormed(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVariantByName(t *testing.T) {
	if _, err := VariantByName("Split 4"); err != nil {
		t.Fatal(err)
	}
	if _, err := VariantByName("Diamond Spec"); err != nil {
		t.Fatal(err)
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestFamilies(t *testing.T) {
	counts := map[string]int{}
	for _, v := range Figure5Variants() {
		counts[v.Family]++
	}
	if counts["stick"] != 4 || counts["split"] != 5 || counts["diamond"] != 3 {
		t.Fatalf("family counts = %v", counts)
	}
}

func TestPlacementSchemes(t *testing.T) {
	d, err := Stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []PlacementScheme{Coarse, Fine, Striped} {
		if _, err := Place(d, s, 8); err != nil {
			t.Errorf("scheme %v: %v", s, err)
		}
	}
	// Speculative requires concurrency-safe tops: OK on CHM stick.
	if _, err := Place(d, Speculative, 8); err != nil {
		t.Errorf("speculative on CHM stick: %v", err)
	}
	// Speculative on a HashMap stick must fail validation.
	dh, err := Stick(container.HashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(dh, Speculative, 8); err == nil {
		t.Error("speculative over HashMap accepted")
	}
	// Striped over a HashMap top (entry-level striping) must also fail.
	if _, err := Place(dh, Striped, 8); err == nil {
		t.Error("entry striping over HashMap accepted")
	}
	if Coarse.String() == "" || PlacementScheme(99).String() == "" {
		t.Error("scheme names broken")
	}
}

func TestSplitAsymmetry(t *testing.T) {
	// Split allows different containers per side.
	d, err := Split(container.ConcurrentHashMap, container.HashMap, container.ConcurrentSkipListMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	if d.EdgeByName("ρu").Container != container.ConcurrentHashMap ||
		d.EdgeByName("ρv").Container != container.ConcurrentSkipListMap {
		t.Fatal("per-side containers not respected")
	}
}
