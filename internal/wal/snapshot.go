package wal

// Snapshots. A snapshot file snap-%016x.snap is named after its seal
// LSN and framed like one giant record:
//
//	[8B magic "CRSSNAP1"] [8B seal LSN LE] [4B payload len LE] [4B CRC32-C] [payload]
//
// The payload lists every registered relation — name, column names, and
// its tuples' tagged values in schema column order, sorted by the
// relational value order so identical states encode to identical bytes.
// A snapshot is written to a .tmp file, fsynced, renamed into place and
// the directory fsynced, so a crash mid-write leaves either the old
// snapshot set or the new one, never a half file; recovery ignores any
// snapshot whose CRC does not check out and falls back to the next
// newest.
//
// The snapshot protocol (Manager.Snapshot) orders against the log, not
// against writers: seal the log at the current last LSN and rotate to a
// fresh segment FIRST, then dump the registry in one read-only batch.
// Every batch with a record at or below the seal reached its commit
// point — and appended — before the seal was read, still holding its
// locks; the dump's read-only batch cannot validate until those locks
// release, so the dump includes every sealed batch's effects. It may
// also include later batches; replay over the snapshot re-applies their
// records, which idempotent logical redo makes a no-op. Old segments and
// snapshots are deleted only after the rename commits the new snapshot.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
)

const snapMagic = "CRSSNAP1"

// snapName renders the snapshot file name of a seal LSN.
func snapName(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lsn)
}

// parseSnapName extracts the seal LSN of a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	return n, err == nil
}

// listSnapshots returns the directory's snapshot file names sorted
// newest (highest seal LSN) first.
func listSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []string
	for _, e := range ents {
		if _, ok := parseSnapName(e.Name()); ok {
			snaps = append(snaps, e.Name())
		}
	}
	sort.Slice(snaps, func(i, j int) bool {
		a, _ := parseSnapName(snaps[i])
		b, _ := parseSnapName(snaps[j])
		return a > b
	})
	return snaps, nil
}

// relDump is one relation's contribution to a snapshot: its registered
// name, schema columns, and tuple values in schema column order.
type relDump struct {
	name string
	cols []string
	rows [][]rel.Value
}

// dumpRegistry captures a consistent registry-wide state: one read-only
// batch holding a full-scan query per relation, so the dump is a
// serializable snapshot by the same argument as any read-only batch.
// Rows are sorted by the relational value order for deterministic bytes.
func dumpRegistry(reg *core.Registry) ([]relDump, error) {
	rels := reg.Relations()
	pend := make([]*core.Pending[[]rel.Tuple], len(rels))
	err := reg.BatchReadOnly(func(tx *core.Txn) error {
		for i, r := range rels {
			p, err := tx.QueryIn(r, rel.T(), r.Spec().Columns...)
			if err != nil {
				return err
			}
			pend[i] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dumps := make([]relDump, len(rels))
	for i, r := range rels {
		cols := r.Spec().Columns
		tuples := pend[i].Value()
		rows := make([][]rel.Value, len(tuples))
		for j, t := range tuples {
			row := make([]rel.Value, len(cols))
			for k, c := range cols {
				v, ok := t.Get(c)
				if !ok {
					return nil, fmt.Errorf("wal: snapshot tuple of %q misses column %q", r.Name(), c)
				}
				row[k] = v
			}
			rows[j] = row
		}
		sort.Slice(rows, func(a, b int) bool { return compareRows(rows[a], rows[b]) < 0 })
		dumps[i] = relDump{name: r.Name(), cols: cols, rows: rows}
	}
	return dumps, nil
}

// compareRows orders value slices lexicographically under rel.Compare.
func compareRows(a, b []rel.Value) int {
	for i := range a {
		if c := rel.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// encodeSnapshot renders a full snapshot file image (header + payload).
func encodeSnapshot(sealLSN uint64, dumps []relDump) ([]byte, error) {
	payload := binary.AppendUvarint(nil, uint64(len(dumps)))
	for _, d := range dumps {
		payload = appendString(payload, d.name)
		payload = binary.AppendUvarint(payload, uint64(len(d.cols)))
		for _, c := range d.cols {
			payload = appendString(payload, c)
		}
		payload = binary.AppendUvarint(payload, uint64(len(d.rows)))
		for _, row := range d.rows {
			for _, v := range row {
				var err error
				if payload, err = appendValue(payload, v); err != nil {
					return nil, err
				}
			}
		}
	}
	img := make([]byte, 0, len(payload)+24)
	img = append(img, snapMagic...)
	img = binary.LittleEndian.AppendUint64(img, sealLSN)
	img = binary.LittleEndian.AppendUint32(img, uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(img[8:20], crcTable), crcTable, payload)
	img = binary.LittleEndian.AppendUint32(img, crc)
	return append(img, payload...), nil
}

// decodeSnapshot validates and decodes a snapshot file image.
func decodeSnapshot(img []byte) (uint64, []relDump, error) {
	if len(img) < 24 || string(img[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("wal: bad snapshot header")
	}
	sealLSN := binary.LittleEndian.Uint64(img[8:16])
	plen := binary.LittleEndian.Uint32(img[16:20])
	crc := binary.LittleEndian.Uint32(img[20:24])
	payload := img[24:]
	if uint32(len(payload)) != plen {
		return 0, nil, fmt.Errorf("wal: snapshot length mismatch")
	}
	if crc32.Update(crc32.Checksum(img[8:20], crcTable), crcTable, payload) != crc {
		return 0, nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	nrels, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, nil, fmt.Errorf("wal: bad snapshot relation count")
	}
	payload = payload[w:]
	dumps := make([]relDump, 0, nrels)
	for i := uint64(0); i < nrels; i++ {
		var d relDump
		var err error
		if d.name, payload, err = decodeString(payload); err != nil {
			return 0, nil, err
		}
		ncols, w := binary.Uvarint(payload)
		if w <= 0 || ncols > 64 {
			return 0, nil, fmt.Errorf("wal: bad snapshot column count")
		}
		payload = payload[w:]
		d.cols = make([]string, ncols)
		for c := range d.cols {
			if d.cols[c], payload, err = decodeString(payload); err != nil {
				return 0, nil, err
			}
		}
		nrows, w := binary.Uvarint(payload)
		if w <= 0 {
			return 0, nil, fmt.Errorf("wal: bad snapshot row count")
		}
		payload = payload[w:]
		d.rows = make([][]rel.Value, 0, nrows)
		for r := uint64(0); r < nrows; r++ {
			row := make([]rel.Value, ncols)
			for c := range row {
				if row[c], payload, err = decodeValue(payload); err != nil {
					return 0, nil, err
				}
			}
			d.rows = append(d.rows, row)
		}
		dumps = append(dumps, d)
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("wal: %d trailing snapshot bytes", len(payload))
	}
	return sealLSN, dumps, nil
}

// insertSplit derives a relation's snapshot-restore insert split from
// its functional dependencies: s-columns are those no FD determines (the
// put-if-absent key), t-columns the rest — the same split the workload's
// natural inserts use, so restore goes through an existing insert plan.
// A relation without determined columns restores fully bound (s = all).
func insertSplit(spec rel.Spec) (sCols, tCols []string) {
	determined := map[string]bool{}
	for _, fd := range spec.FDs {
		for _, c := range fd.To {
			determined[c] = true
		}
	}
	for _, c := range spec.Columns {
		if determined[c] {
			tCols = append(tCols, c)
		} else {
			sCols = append(sCols, c)
		}
	}
	if len(sCols) == 0 {
		return spec.Columns, nil
	}
	return sCols, tCols
}

// restoreBatchRows bounds how many snapshot tuples one restore batch
// inserts (keeps lock sets and arenas modest on big snapshots).
const restoreBatchRows = 256

// restoreSnapshot loads a decoded snapshot into a freshly synthesized
// registry via ordinary batched inserts (the commit logger must not be
// attached yet). Every dumped relation must exist with matching columns.
func restoreSnapshot(reg *core.Registry, dumps []relDump) error {
	for _, d := range dumps {
		r := reg.RelationByName(d.name)
		if r == nil {
			return fmt.Errorf("wal: snapshot names unknown relation %q", d.name)
		}
		cols := r.Spec().Columns
		if len(cols) != len(d.cols) {
			return fmt.Errorf("wal: relation %q: snapshot has %d columns, schema %d", d.name, len(d.cols), len(cols))
		}
		for i := range cols {
			if cols[i] != d.cols[i] {
				return fmt.Errorf("wal: relation %q: snapshot column %q, schema %q", d.name, d.cols[i], cols[i])
			}
		}
		sCols, tCols := insertSplit(r.Spec())
		sIdx := columnIndexes(cols, sCols)
		tIdx := columnIndexes(cols, tCols)
		for off := 0; off < len(d.rows); off += restoreBatchRows {
			end := off + restoreBatchRows
			if end > len(d.rows) {
				end = len(d.rows)
			}
			chunk := d.rows[off:end]
			err := reg.Batch(func(tx *core.Txn) error {
				for _, row := range chunk {
					s := rel.TupleFromSorted(sCols, pickValues(row, sIdx))
					t := rel.TupleFromSorted(tCols, pickValues(row, tIdx))
					if _, err := tx.InsertInto(r, s, t); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("wal: restoring %q: %w", d.name, err)
			}
		}
	}
	return nil
}

// columnIndexes maps the names in sub to their indexes in cols.
func columnIndexes(cols, sub []string) []int {
	idx := make([]int, len(sub))
	for i, c := range sub {
		for j, cc := range cols {
			if cc == c {
				idx[i] = j
				break
			}
		}
	}
	return idx
}

// pickValues gathers the row values at idx.
func pickValues(row []rel.Value, idx []int) []rel.Value {
	vals := make([]rel.Value, len(idx))
	for i, j := range idx {
		vals[i] = row[j]
	}
	return vals
}

// writeSnapshotFile atomically publishes a snapshot image: temp file,
// fsync, rename, directory fsync.
func writeSnapshotFile(dir string, sealLSN uint64, img []byte) (string, error) {
	name := snapName(sealLSN)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	crash("snapshot-mid-write")
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	crash("snapshot-pre-rename")
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return name, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
