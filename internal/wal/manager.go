package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rel"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs once per dispatcher window, after
	// the group's single LogCommit and before any reply — group commit
	// above is fsync batching below. Acknowledged batches survive a
	// crash; unacknowledged tail records may be truncated.
	SyncBatch SyncPolicy = iota
	// SyncNone never fsyncs: the OS flushes when it pleases. Fastest;
	// a crash may lose acknowledged batches (never corrupt — recovery
	// still cuts at a valid record boundary).
	SyncNone
	// SyncAlways fsyncs inside every LogCommit, before the batch is even
	// delivered in memory. Strictest and slowest; group commit still
	// amortizes it across a window's requests.
	SyncAlways
)

// ParseSyncPolicy maps the -fsync flag values none|batch|always.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want none, batch or always)", s)
}

// String renders the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	default:
		return "batch"
	}
}

// Options configures Open.
type Options struct {
	// Policy is the fsync policy (zero value: SyncBatch).
	Policy SyncPolicy
	// SnapshotEvery, when positive, takes a background snapshot every
	// that many appended batches; zero disables automatic snapshots
	// (Snapshot can still be called explicitly).
	SnapshotEvery int
}

// Stats is a point-in-time snapshot of the manager's counters, shaped
// for /v1/stats.
type Stats struct {
	// Appends counts LogCommit records written (one per committed
	// mutating batch).
	Appends uint64 `json:"wal_appends"`
	// Fsyncs counts fsyncs of the active segment (Sync calls that found
	// dirty bytes, plus SyncAlways appends and pre-rotation syncs).
	Fsyncs uint64 `json:"wal_fsyncs"`
	// Snapshots counts snapshots successfully published.
	Snapshots uint64 `json:"wal_snapshots"`
	// RecoveredBatches counts redo records replayed by Open.
	RecoveredBatches uint64 `json:"recovered_batches"`
	// LastLSN is the newest assigned LSN.
	LastLSN uint64 `json:"wal_last_lsn"`
	// SnapshotLSN is the seal LSN of the newest published snapshot.
	SnapshotLSN uint64 `json:"wal_snapshot_lsn"`
}

// crashHook, when non-nil, runs at named crash points on the append and
// snapshot paths; the subprocess crash harness sets it to os.Exit at a
// chosen point. Points: "pre-append", "post-append" (appended, not yet
// delivered), "snapshot-rotated", "snapshot-mid-write",
// "snapshot-pre-rename", "snapshot-pre-cleanup".
var crashHook func(point string)

// crash invokes the crash hook if armed.
func crash(point string) {
	if crashHook != nil {
		crashHook(point)
	}
}

// Manager is the durability engine of one registry: it implements
// core.CommitLogger over a directory of CRC-checked segment files and
// snapshot files. Open recovers the registry from the directory, then
// the caller attaches the manager with Registry.SetCommitLogger and
// (for group commit) calls Sync at each reply boundary.
type Manager struct {
	dir  string
	reg  *core.Registry
	opts Options

	// mu serializes appends, syncs and segment rotation. LogCommit runs
	// with registry locks held and takes mu, so nothing holding mu may
	// touch the registry (Snapshot releases mu before its dump batch).
	mu       sync.Mutex
	f        *os.File
	buf      []byte
	lsn      uint64 // last assigned LSN
	segFirst uint64 // active segment's first LSN
	dirty    bool   // appended bytes not yet fsynced
	err      error  // sticky I/O error; fails all further appends

	// snapMu serializes snapshots (explicit and background).
	snapMu   sync.Mutex
	snapErr  error // last background snapshot failure, surfaced by Close
	snapCh   chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
	closed   bool
	sinceSnp int

	appends   atomic.Uint64
	fsyncs    atomic.Uint64
	snaps     atomic.Uint64
	recovered atomic.Uint64
	lastLSN   atomic.Uint64
	snapLSN   atomic.Uint64
}

// Open recovers the registry from dir and returns a manager appending to
// it. Recovery loads the newest CRC-valid snapshot (restoring it through
// batched inserts), replays every redo record past the snapshot's seal
// LSN in order — one Registry.Batch per record — and truncates a torn or
// CRC-failing tail in the final segment; damage in any earlier segment
// is corruption of acknowledged history and fails Open. The registry
// must be freshly synthesized (same relations, empty) and must not get
// its commit logger attached until Open returns, so replay is never
// re-logged.
func Open(dir string, reg *core.Registry, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, reg: reg, opts: opts,
		snapCh: make(chan struct{}, 1), done: make(chan struct{})}

	// Sweep interrupted snapshot temp files: never valid, never named.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	// Newest valid snapshot wins; corrupt ones are skipped, not fatal —
	// the next older snapshot plus a longer replay reaches the same
	// state. Schema mismatches ARE fatal (wrong registry, not bad disk).
	snapLSN := uint64(0)
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range snaps {
		img, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		lsn, dumps, err := decodeSnapshot(img)
		if err != nil {
			continue
		}
		if err := restoreSnapshot(reg, dumps); err != nil {
			return nil, err
		}
		snapLSN = lsn
		break
	}
	m.snapLSN.Store(snapLSN)

	// Replay the redo tail: records above the snapshot seal, one batch
	// per record, in LSN order.
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	lastLSN := snapLSN
	if len(segs) > 0 {
		if first, _ := parseSegName(segs[0]); first <= snapLSN {
			lastLSN = first - 1 // validate the already-snapshotted prefix too
		} else if first != snapLSN+1 {
			return nil, fmt.Errorf("wal: oldest segment %s starts past snapshot LSN %d", segs[0], snapLSN)
		}
	}
	activeName := ""
	for i, name := range segs {
		path := filepath.Join(dir, name)
		res, err := scanSegment(path, lastLSN, snapLSN, func(lsn uint64, payload []byte) error {
			ops, err := decodeOps(payload)
			if err != nil {
				return fmt.Errorf("wal: record %d: %w", lsn, err)
			}
			if err := replayRecord(reg, ops); err != nil {
				return fmt.Errorf("wal: replaying record %d: %w", lsn, err)
			}
			m.recovered.Add(1)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if res.torn {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: corrupt record in non-final segment: %w", res.tornErr)
			}
			// The torn-tail rule: an interrupted append in the final
			// segment was never acknowledged — cut it off. A segment cut
			// below even its header is removed outright; appends continue
			// in its predecessor (record LSNs stay contiguous).
			if res.validEnd < segHdrLen {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				continue
			}
			if err := os.Truncate(path, res.validEnd); err != nil {
				return nil, err
			}
		}
		lastLSN = res.lastLSN
		activeName = name
	}
	m.lsn = lastLSN
	m.lastLSN.Store(lastLSN)

	// Append into the final surviving segment, or start a fresh one.
	if activeName != "" {
		f, err := os.OpenFile(filepath.Join(dir, activeName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		m.f = f
		m.segFirst, _ = parseSegName(activeName)
	} else {
		if err := m.openSegment(lastLSN + 1); err != nil {
			return nil, err
		}
	}

	if opts.SnapshotEvery > 0 {
		m.wg.Add(1)
		go m.snapshotLoop()
	}
	return m, nil
}

// replayRecord re-executes one logged batch through the ordinary batch
// machinery; mutation outcomes (Pending results) are discarded — the
// original decisions replay identically from the same prefix state.
func replayRecord(reg *core.Registry, ops []core.RedoOp) error {
	return reg.Batch(func(tx *core.Txn) error {
		for i := range ops {
			op := &ops[i]
			r := reg.RelationByName(op.Rel)
			if r == nil {
				return fmt.Errorf("unknown relation %q", op.Rel)
			}
			schema := r.Schema()
			if op.RowMask&^schema.FullMask() != 0 {
				return fmt.Errorf("relation %q: row mask %x exceeds schema", op.Rel, op.RowMask)
			}
			if op.Insert {
				s := maskTuple(schema, op.Vals, op.BoundMask)
				t := maskTuple(schema, op.Vals, op.RowMask&^op.BoundMask)
				if _, err := tx.InsertInto(r, s, t); err != nil {
					return err
				}
			} else {
				s := maskTuple(schema, op.Vals, op.RowMask)
				if _, err := tx.RemoveFrom(r, s); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// maskTuple projects the masked columns of a dense value slice into a
// tuple (schema columns are sorted, so the projection is too).
func maskTuple(schema *rel.Schema, vals []rel.Value, mask uint64) rel.Tuple {
	cols := make([]string, 0, 4)
	vs := make([]rel.Value, 0, 4)
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		cols = append(cols, schema.Column(i))
		vs = append(vs, vals[i])
	}
	return rel.TupleFromSorted(cols, vs)
}

// openSegment creates and switches to a fresh segment (mu held or
// single-threaded Open).
func (m *Manager) openSegment(firstLSN uint64) error {
	path := filepath.Join(m.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(writeSegHeader(nil, firstLSN)); err != nil {
		f.Close()
		return err
	}
	if m.f != nil {
		m.f.Close()
	}
	m.f = f
	m.segFirst = firstLSN
	return nil
}

// LogCommit implements core.CommitLogger: encode the batch's ops as the
// next record and append it to the active segment. Called at the commit
// point with the batch's locks held, so record order is serialization
// order for conflicting batches. Under SyncAlways the record is fsynced
// before returning; otherwise durability waits for Sync (or the OS). An
// I/O error is sticky — the manager refuses all further appends, and the
// failed batch was rolled back by core.
func (m *Manager) LogCommit(ops []core.RedoOp) error {
	if len(ops) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	lsn := m.lsn + 1
	// Build the whole record in one reusable buffer: a 16-byte header
	// placeholder, the encoded payload, then the header backfilled.
	buf := append(m.buf[:0], make([]byte, recHdrLen)...)
	buf, err := appendOps(buf, ops)
	if err != nil {
		m.err = err
		return err
	}
	m.buf = buf
	payload := buf[recHdrLen:]
	binary.LittleEndian.PutUint64(buf[0:8], lsn)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(buf[0:12], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	crash("pre-append")
	if _, err := m.f.Write(buf); err != nil {
		m.err = err
		return err
	}
	m.lsn = lsn
	m.lastLSN.Store(lsn)
	m.dirty = true
	m.appends.Add(1)
	if m.opts.Policy == SyncAlways {
		if err := m.f.Sync(); err != nil {
			m.err = err
			return err
		}
		m.dirty = false
		m.fsyncs.Add(1)
	}
	crash("post-append")
	if m.opts.SnapshotEvery > 0 {
		m.sinceSnp++
		if m.sinceSnp >= m.opts.SnapshotEvery {
			m.sinceSnp = 0
			select {
			case m.snapCh <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// Sync makes every appended record durable before returning — the reply
// barrier of group commit. Under SyncBatch it fsyncs iff unsynced bytes
// exist (so one mutating window costs exactly one fsync and read-only
// windows cost none); under SyncAlways appends already synced and Sync
// is a no-op; under SyncNone it is always a no-op.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if m.opts.Policy == SyncNone || !m.dirty {
		return nil
	}
	if err := m.f.Sync(); err != nil {
		m.err = err
		return err
	}
	m.dirty = false
	m.fsyncs.Add(1)
	return nil
}

// Snapshot publishes a consistent registry snapshot and prunes the log:
// seal at the current last LSN, rotate to a fresh segment, dump the
// registry in one read-only batch (mu NOT held — LogCommit holds
// registry locks when it takes mu, so holding mu across a registry
// batch would invert that order), write-rename the snapshot file, then
// delete sealed segments and older snapshots. See snapshot.go for why
// the seal is conservative and replay over the snapshot is idempotent.
func (m *Manager) Snapshot() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return m.err
	}
	sealLSN := m.lsn
	if sealLSN == m.snapLSN.Load() && sealLSN > 0 {
		m.mu.Unlock()
		return nil // nothing new to snapshot
	}
	if m.segFirst != sealLSN+1 {
		// Seal the active segment: sync its records (they are about to be
		// the only copy until the snapshot lands... and after cleanup the
		// snapshot IS the only copy of the sealed prefix), then rotate.
		if m.dirty {
			if err := m.f.Sync(); err != nil {
				m.err = err
				m.mu.Unlock()
				return err
			}
			m.dirty = false
			m.fsyncs.Add(1)
		}
		if err := m.openSegment(sealLSN + 1); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	m.mu.Unlock()
	crash("snapshot-rotated")

	dumps, err := dumpRegistry(m.reg)
	if err != nil {
		return err
	}
	img, err := encodeSnapshot(sealLSN, dumps)
	if err != nil {
		return err
	}
	newSnap, err := writeSnapshotFile(m.dir, sealLSN, img)
	if err != nil {
		return err
	}
	m.snapLSN.Store(sealLSN)
	m.snaps.Add(1)
	crash("snapshot-pre-cleanup")

	// Cleanup: every non-active segment holds only records <= sealLSN,
	// all captured by the published snapshot; older snapshots are
	// superseded. Failures here are cosmetic (recovery skips records
	// below the seal), so errors are ignored.
	m.mu.Lock()
	active := segName(m.segFirst)
	m.mu.Unlock()
	segs, _ := listSegments(m.dir)
	for _, name := range segs {
		if name != active {
			os.Remove(filepath.Join(m.dir, name))
		}
	}
	snaps, _ := listSnapshots(m.dir)
	for _, name := range snaps {
		if name != newSnap {
			os.Remove(filepath.Join(m.dir, name))
		}
	}
	return nil
}

// snapshotLoop services background snapshot requests signalled by
// LogCommit every SnapshotEvery appends.
func (m *Manager) snapshotLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case <-m.snapCh:
			if err := m.Snapshot(); err != nil {
				m.snapMu.Lock()
				m.snapErr = err
				m.snapMu.Unlock()
			}
		}
	}
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Appends:          m.appends.Load(),
		Fsyncs:           m.fsyncs.Load(),
		Snapshots:        m.snaps.Load(),
		RecoveredBatches: m.recovered.Load(),
		LastLSN:          m.lastLSN.Load(),
		SnapshotLSN:      m.snapLSN.Load(),
	}
}

// Close syncs outstanding records (except under SyncNone), stops the
// background snapshotter and closes the active segment. It reports the
// first of: a sticky append error, a background snapshot failure, or a
// final-sync/close error. The manager must be detached (or the registry
// quiesced) first.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.err
	if err == nil && m.dirty && m.opts.Policy != SyncNone {
		if err = m.f.Sync(); err == nil {
			m.dirty = false
			m.fsyncs.Add(1)
		}
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	if err == nil {
		m.snapMu.Lock()
		err = m.snapErr
		m.snapMu.Unlock()
	}
	return err
}
