package wal

// The kill-and-restart harness: a child copy of the test binary runs the
// deterministic social workload against a WAL directory with crashHook
// armed to os.Exit at a chosen crash point — pre-append (the record
// never reached the file), post-append (appended, not yet delivered or
// acknowledged) and the mid-snapshot points. os.Exit takes the process
// down without unwinding, so everything written before the hook is on
// disk and nothing after it is — the same cut a SIGKILL makes. The
// parent then recovers the directory into a fresh registry and compares
// it byte-for-byte against a never-crashed oracle that ran the exactly
// predicted number of batches.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"

	"repro/internal/workload"
)

const (
	crashEnvPoint = "WAL_CRASH_POINT"
	crashEnvDir   = "WAL_CRASH_DIR"
	crashEnvAfter = "WAL_CRASH_AFTER"
	crashEnvMode  = "WAL_CRASH_MODE"
	crashExit     = 42
)

// TestMain diverts to the crash child when the harness env vars are set;
// otherwise it runs the package tests normally.
func TestMain(m *testing.M) {
	if os.Getenv(crashEnvPoint) != "" {
		crashChild()
		return
	}
	os.Exit(m.Run())
}

// crashChild runs batches until the armed crash point fires. Modes:
// "append" arms the point before batch AFTER runs, so the process dies
// inside that batch's LogCommit; "snapshot" runs AFTER batches, then
// calls Snapshot with the point armed.
func crashChild() {
	point := os.Getenv(crashEnvPoint)
	dir := os.Getenv(crashEnvDir)
	after, err := strconv.Atoi(os.Getenv(crashEnvAfter))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad WAL_CRASH_AFTER:", err)
		os.Exit(3)
	}
	mode := os.Getenv(crashEnvMode)
	soc := workload.MustSocial()
	m, err := Open(dir, soc.Reg, Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child Open:", err)
		os.Exit(3)
	}
	soc.Reg.SetCommitLogger(m)
	die := func(p string) {
		if p == point {
			os.Exit(crashExit)
		}
	}
	for i := 0; i < after; i++ {
		if err := tbBatch(soc, i); err != nil {
			fmt.Fprintln(os.Stderr, "child batch:", err)
			os.Exit(3)
		}
		if err := m.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "child sync:", err)
			os.Exit(3)
		}
	}
	crashHook = die
	switch mode {
	case "append":
		_ = tbBatch(soc, after) // dies inside LogCommit
	case "snapshot":
		_ = m.Snapshot() // dies at the armed snapshot point
	}
	fmt.Fprintln(os.Stderr, "crash point never fired")
	os.Exit(3)
}

// tbBatch is socialBatch without the testing.TB plumbing (the child has
// no *testing.T).
func tbBatch(soc *workload.Social, i int) error {
	return socialBatch(nil, soc, i)
}

// runCrashChild re-executes the test binary as a crash child and
// requires it to die at the crash point.
func runCrashChild(t *testing.T, dir, point, mode string, after int) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashEnvPoint+"="+point,
		crashEnvDir+"="+dir,
		crashEnvAfter+"="+strconv.Itoa(after),
		crashEnvMode+"="+mode,
	)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != crashExit {
		t.Fatalf("crash child at %s: err=%v, output:\n%s", point, err, out)
	}
}

func TestCrashRecovery(t *testing.T) {
	const acked = 9
	cases := []struct {
		point, mode string
		// wantBatches is the exact number of batches the recovered state
		// must equal: the crash point pins whether the in-flight batch's
		// record reached the file.
		wantBatches int
	}{
		// Died before the record was written: the in-flight batch is
		// gone, every acknowledged batch survives.
		{"pre-append", "append", acked},
		// Died after the write () syscall: the record is in the file (a
		// process death loses no written file data — only a machine
		// crash could, and that tail was never acknowledged), so replay
		// includes the final batch.
		{"post-append", "append", acked + 1},
		// Mid-snapshot crashes: the snapshot never influences committed
		// state, whatever stage it died at.
		{"snapshot-rotated", "snapshot", acked},     // rotated, no snap file: replay spans two segments
		{"snapshot-mid-write", "snapshot", acked},   // unsynced .tmp left behind
		{"snapshot-pre-rename", "snapshot", acked},  // synced .tmp, never renamed
		{"snapshot-pre-cleanup", "snapshot", acked}, // snap live, sealed segments not yet pruned
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			runCrashChild(t, dir, tc.point, tc.mode, acked)
			rsoc, rm := recoverSocial(t, dir, Options{})
			defer rm.Close()
			if want := oracle(t, tc.wantBatches); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
				t.Fatalf("recovered state differs from the %d-batch oracle", tc.wantBatches)
			}
		})
	}
}
