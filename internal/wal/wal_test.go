package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/workload"
)

// stateBytes renders a registry's full state as canonical snapshot bytes
// (dumpRegistry sorts rows), so two registries are state-equal iff their
// stateBytes are byte-for-byte equal.
func stateBytes(t *testing.T, reg *core.Registry) []byte {
	t.Helper()
	dumps, err := dumpRegistry(reg)
	if err != nil {
		t.Fatalf("dumpRegistry: %v", err)
	}
	img, err := encodeSnapshot(0, dumps)
	if err != nil {
		t.Fatalf("encodeSnapshot: %v", err)
	}
	return img
}

// socialBatch applies deterministic mixed batch i to a social registry:
// an insert-heavy mix with counts (OCC mixed batches), pure-mutation
// batches (2PL) and periodic removes, covering every logged commit path.
func socialBatch(t testing.TB, soc *workload.Social, i int) error {
	u := int64(i % 17)
	switch i % 4 {
	case 0: // mixed: inserts + count => registry OCC commit
		return soc.Reg.Batch(func(tx *core.Txn) error {
			if _, err := tx.InsertInto(soc.Users, rel.T("user", u), rel.T("posts", int64(i))); err != nil {
				return err
			}
			if _, err := tx.InsertInto(soc.Posts, rel.T("author", u, "post", int64(i)), rel.T("ts", int64(2*i))); err != nil {
				return err
			}
			_, err := tx.CountIn(soc.Posts, rel.T("author", u))
			return err
		})
	case 1: // pure mutations => pessimistic registry commit
		return soc.Reg.Batch(func(tx *core.Txn) error {
			if _, err := tx.InsertInto(soc.Follows, rel.T("src", u, "dst", int64((i+1)%17)), rel.T("since", int64(i))); err != nil {
				return err
			}
			_, err := tx.InsertInto(soc.Posts, rel.T("author", u, "post", int64(1000+i)), rel.T("ts", int64(i)))
			return err
		})
	case 2: // single-relation mixed batch => relation OCC commit
		return soc.Posts.Batch(func(tx *core.Txn) error {
			if _, err := tx.Insert(rel.T("author", u, "post", int64(2000+i)), rel.T("ts", int64(i))); err != nil {
				return err
			}
			_, err := tx.Count(rel.T("author", u))
			return err
		})
	default: // remove + insert, single relation, pure mutation 2PL
		return soc.Posts.Batch(func(tx *core.Txn) error {
			if _, err := tx.Remove(rel.T("author", u, "post", int64(2000+i-1))); err != nil {
				return err
			}
			_, err := tx.Insert(rel.T("author", u, "post", int64(3000+i)), rel.T("ts", int64(i)))
			return err
		})
	}
}

// runSocial opens a manager over dir, applies n deterministic batches to
// a fresh social registry and returns it with the manager still open.
func runSocial(t *testing.T, dir string, n int, opts Options) (*workload.Social, *Manager) {
	t.Helper()
	soc := workload.MustSocial()
	m, err := Open(dir, soc.Reg, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	soc.Reg.SetCommitLogger(m)
	for i := 0; i < n; i++ {
		if err := socialBatch(t, soc, i); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return soc, m
}

// oracle builds the never-crashed reference state: n batches applied to
// a fresh registry with no logging at all.
func oracle(t *testing.T, n int) []byte {
	t.Helper()
	soc := workload.MustSocial()
	for i := 0; i < n; i++ {
		if err := socialBatch(t, soc, i); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	return stateBytes(t, soc.Reg)
}

// recover opens dir into a fresh social registry and returns it with the
// manager.
func recoverSocial(t *testing.T, dir string, opts Options) (*workload.Social, *Manager) {
	t.Helper()
	soc := workload.MustSocial()
	m, err := Open(dir, soc.Reg, opts)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	return soc, m
}

func TestValueRoundtrip(t *testing.T) {
	vals := []rel.Value{nil, false, true, int(-7), int(42), int64(-1 << 40), int64(99), uint64(1 << 63), float64(3.25), "", "hello"}
	var b []byte
	for _, v := range vals {
		var err error
		if b, err = appendValue(b, v); err != nil {
			t.Fatalf("append %T: %v", v, err)
		}
	}
	rest := b
	for _, want := range vals {
		var got rel.Value
		var err error
		if got, rest, err = decodeValue(rest); err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Exact dynamic type AND value: recovered state must be
		// indistinguishable from the original.
		switch w := want.(type) {
		case nil:
			if got != nil {
				t.Fatalf("got %#v, want nil", got)
			}
		case int:
			if g, ok := got.(int); !ok || g != w {
				t.Fatalf("got %#v (%T), want %#v", got, got, want)
			}
		case int64:
			if g, ok := got.(int64); !ok || g != w {
				t.Fatalf("got %#v (%T), want %#v", got, got, want)
			}
		default:
			if got != want {
				t.Fatalf("got %#v (%T), want %#v", got, got, want)
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	soc, m := runSocial(t, dir, 0, Options{})
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	if !bytes.Equal(stateBytes(t, soc.Reg), stateBytes(t, rsoc.Reg)) {
		t.Fatal("empty recovery diverged")
	}
}

func TestLogReplayRoundtrip(t *testing.T) {
	const n = 60
	dir := t.TempDir()
	soc, m := runSocial(t, dir, n, Options{})
	if got := m.Stats().Appends; got != n {
		t.Fatalf("appends = %d, want %d (one record per committed batch)", got, n)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	if got := rm.Stats().RecoveredBatches; got != n {
		t.Fatalf("recovered %d batches, want %d", got, n)
	}
	if !bytes.Equal(stateBytes(t, soc.Reg), stateBytes(t, rsoc.Reg)) {
		t.Fatal("recovered state differs from the live registry")
	}
	if want := oracle(t, n); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
		t.Fatal("recovered state differs from the never-crashed oracle")
	}

	// The recovered manager keeps logging: more batches, recover again.
	rsoc.Reg.SetCommitLogger(rm)
	for i := n; i < n+10; i++ {
		if err := socialBatch(t, rsoc, i); err != nil {
			t.Fatalf("post-recovery batch %d: %v", i, err)
		}
	}
	if err := rm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, m2 := recoverSocial(t, dir, Options{})
	defer m2.Close()
	if want := oracle(t, n+10); !bytes.Equal(want, stateBytes(t, r2.Reg)) {
		t.Fatal("second recovery differs from the oracle")
	}
}

func TestSnapshotPrunesAndRecovers(t *testing.T) {
	const before, after = 40, 23
	dir := t.TempDir()
	soc, m := runSocial(t, dir, before, Options{})
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("%d segments after snapshot, want 1 (sealed segments pruned)", len(segs))
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	for i := before; i < before+after; i++ {
		if err := socialBatch(t, soc, i); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	st := rm.Stats()
	if st.RecoveredBatches != after {
		t.Fatalf("replayed %d records, want only the %d past the snapshot seal", st.RecoveredBatches, after)
	}
	if st.SnapshotLSN != before {
		t.Fatalf("snapshot LSN %d, want %d", st.SnapshotLSN, before)
	}
	if want := oracle(t, before+after); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
		t.Fatal("snapshot+tail recovery differs from the oracle")
	}
}

func TestReplayIdempotentOverSnapshot(t *testing.T) {
	// The conservative-seal argument: a snapshot may already contain the
	// effects of records past its seal; replaying them over it must be a
	// no-op. Restore a dump of the FULL state, then re-apply the redo of
	// the last batches on top.
	const n = 24
	soc := workload.MustSocial()
	var logged [][]core.RedoOp
	soc.Reg.SetCommitLogger(logFunc(func(ops []core.RedoOp) error {
		cp := make([]core.RedoOp, len(ops))
		for i, op := range ops {
			vals := append([]rel.Value(nil), op.Vals...)
			cp[i] = core.RedoOp{Rel: op.Rel, Insert: op.Insert, Vals: vals, RowMask: op.RowMask, BoundMask: op.BoundMask}
		}
		logged = append(logged, cp)
		return nil
	}))
	for i := 0; i < n; i++ {
		if err := socialBatch(t, soc, i); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	dumps, err := dumpRegistry(soc.Reg)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	restored := workload.MustSocial()
	if err := restoreSnapshot(restored.Reg, dumps); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(stateBytes(t, soc.Reg), stateBytes(t, restored.Reg)) {
		t.Fatal("snapshot restore diverged before replay")
	}
	for _, ops := range logged[n/2:] { // a suffix of already-applied history
		if err := replayRecord(restored.Reg, ops); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if !bytes.Equal(stateBytes(t, soc.Reg), stateBytes(t, restored.Reg)) {
		t.Fatal("re-applying an already-applied suffix changed the state")
	}
}

// logFunc adapts a function to core.CommitLogger for tests.
type logFunc func(ops []core.RedoOp) error

func (f logFunc) LogCommit(ops []core.RedoOp) error { return f(ops) }

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	return filepath.Join(dir, segs[len(segs)-1])
}

func TestTornTailTruncated(t *testing.T) {
	const n = 20
	dir := t.TempDir()
	_, m := runSocial(t, dir, n, Options{})
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A torn append: half a record header, then half a plausible record.
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pre, _ := os.Stat(path)
	if _, err := f.Write([]byte{21, 0, 0, 0, 0, 0, 0, 0, 200, 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rsoc, rm := recoverSocial(t, dir, Options{})
	if want := oracle(t, n); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
		t.Fatal("torn-tail recovery differs from the oracle")
	}
	if post, _ := os.Stat(path); post.Size() != pre.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", post.Size(), pre.Size())
	}
	// Appends continue cleanly after the truncation.
	rsoc.Reg.SetCommitLogger(rm)
	if err := socialBatch(t, rsoc, n); err != nil {
		t.Fatalf("post-truncation batch: %v", err)
	}
	if err := rm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, m2 := recoverSocial(t, dir, Options{})
	defer m2.Close()
	if want := oracle(t, n+1); !bytes.Equal(want, stateBytes(t, r2.Reg)) {
		t.Fatal("recovery after truncation+append differs from the oracle")
	}
}

func TestCorruptCRCTailTruncated(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	_, m := runSocial(t, dir, n, Options{})
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one byte in the FINAL record's payload: CRC fails, the record
	// (and only it) is truncated away.
	path := lastSegment(t, dir)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xff
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	if got := rm.Stats().RecoveredBatches; got != n-1 {
		t.Fatalf("recovered %d batches, want %d (corrupt final record dropped)", got, n-1)
	}
	if want := oracle(t, n-1); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
		t.Fatal("corrupt-CRC recovery differs from the n-1 oracle")
	}
}

func TestCorruptEarlierSegmentFails(t *testing.T) {
	// Hand-craft two segments and corrupt a record in the FIRST: that is
	// acknowledged history, not a torn tail, so Open must refuse.
	dir := t.TempDir()
	op := core.RedoOp{Rel: "users", Insert: true, Vals: []rel.Value{int64(5), int64(1)}, RowMask: 3, BoundMask: 2}
	mkseg := func(firstLSN uint64, n int) []byte {
		b := writeSegHeader(nil, firstLSN)
		for i := 0; i < n; i++ {
			payload, err := appendOps(nil, []core.RedoOp{op})
			if err != nil {
				t.Fatal(err)
			}
			b = frameRecord(b, firstLSN+uint64(i), payload)
		}
		return b
	}
	seg1 := mkseg(1, 2)
	seg1[len(seg1)-1] ^= 0xff // corrupt the second record of segment one
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(3)), mkseg(3, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	soc := workload.MustSocial()
	if _, err := Open(dir, soc.Reg, Options{}); err == nil {
		t.Fatal("Open accepted corruption in a non-final segment")
	}
}

func TestCorruptSnapshotWithPrunedLogFails(t *testing.T) {
	// After pruning, the snapshot is the only copy of the sealed prefix;
	// if it is corrupt, recovery must fail loudly rather than replay the
	// tail onto an empty registry.
	dir := t.TempDir()
	soc, m := runSocial(t, dir, 10, Options{})
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := socialBatch(t, soc, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, _ := listSnapshots(dir)
	path := filepath.Join(dir, snaps[0])
	img, _ := os.ReadFile(path)
	img[len(img)-1] ^= 0xff
	os.WriteFile(path, img, 0o644)
	fresh := workload.MustSocial()
	if _, err := Open(dir, fresh.Reg, Options{}); err == nil {
		t.Fatal("Open silently recovered past a corrupt snapshot with a pruned log")
	}
}

func TestLogFailureAbortsBatch(t *testing.T) {
	dir := t.TempDir()
	soc, m := runSocial(t, dir, 8, Options{})
	defer m.Close()
	before := stateBytes(t, soc.Reg)
	m.mu.Lock()
	m.f.Close() // force every subsequent append to fail
	m.mu.Unlock()

	// Pure-mutation (2PL) and mixed (OCC) batches must both surface the
	// error and leave the registry untouched.
	if err := socialBatch(t, soc, 9); err == nil { // i%4==1: pure mutations
		t.Fatal("2PL batch committed despite a failed log append")
	}
	if err := socialBatch(t, soc, 8); err == nil { // i%4==0: mixed OCC
		t.Fatal("OCC batch committed despite a failed log append")
	}
	if !bytes.Equal(before, stateBytes(t, soc.Reg)) {
		t.Fatal("failed-append batch left partial state behind")
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		dir := t.TempDir()
		_, m := runSocial(t, dir, 10, Options{Policy: SyncAlways})
		defer m.Close()
		st := m.Stats()
		if st.Fsyncs != st.Appends || st.Fsyncs != 10 {
			t.Fatalf("fsyncs %d appends %d, want 10/10 under SyncAlways", st.Fsyncs, st.Appends)
		}
	})
	t.Run("batch", func(t *testing.T) {
		dir := t.TempDir()
		soc, m := runSocial(t, dir, 10, Options{Policy: SyncBatch})
		defer m.Close()
		if st := m.Stats(); st.Fsyncs != 0 {
			t.Fatalf("fsyncs %d before any Sync", st.Fsyncs)
		}
		if err := m.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(); err != nil { // nothing new: must not fsync again
			t.Fatal(err)
		}
		if st := m.Stats(); st.Fsyncs != 1 {
			t.Fatalf("fsyncs %d after Sync+idle Sync, want 1", st.Fsyncs)
		}
		if err := socialBatch(t, soc, 10); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.Fsyncs != 2 {
			t.Fatalf("fsyncs %d after one more batch+Sync, want 2", st.Fsyncs)
		}
	})
	t.Run("none", func(t *testing.T) {
		dir := t.TempDir()
		_, m := runSocial(t, dir, 10, Options{Policy: SyncNone})
		defer m.Close()
		if err := m.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.Fsyncs != 0 {
			t.Fatalf("fsyncs %d under SyncNone, want 0", st.Fsyncs)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"none", SyncNone}, {"batch", SyncBatch}, {"always", SyncAlways}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestAutomaticSnapshots(t *testing.T) {
	dir := t.TempDir()
	soc, m := runSocial(t, dir, 25, Options{SnapshotEvery: 10})
	// The background snapshotter is asynchronous; Snapshot() here both
	// drains any in-flight signal (snapMu) and seals the rest.
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := m.Stats(); st.Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	_ = soc
	if want := oracle(t, 25); !bytes.Equal(want, stateBytes(t, rsoc.Reg)) {
		t.Fatal("recovery after automatic snapshots differs from the oracle")
	}
}
