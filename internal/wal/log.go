package wal

// Segment files and record framing. A segment is named wal-%016x.log
// after the LSN of its first record and starts with a 16-byte header
// (8-byte magic, 8-byte first LSN little-endian). Each record is
//
//	[8B LSN LE] [4B payload length LE] [4B CRC32-C] [payload]
//
// with the CRC (Castagnoli) taken over the 12 LSN+length bytes and the
// payload, so neither a torn length field nor a torn payload can frame a
// bogus record. LSNs are assigned densely (first record of the log is
// LSN 1) and checked for continuity on scan: inside the FINAL segment a
// short header, short payload, CRC mismatch or LSN discontinuity marks
// the torn tail of an interrupted append — everything from there on is
// truncated, which is safe because an append only precedes the reply
// sync. The same damage in any earlier segment is corruption of
// acknowledged history and fails recovery instead.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segMagic  = "CRSWAL01"
	segHdrLen = 16
	recHdrLen = 16
	// maxRecordLen bounds a record payload; a "length" beyond it in the
	// final segment is torn-tail garbage, not a real record.
	maxRecordLen = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segName renders the segment file name of a first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseSegName extracts the first LSN of a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	return n, err == nil
}

// listSegments returns the directory's segment file names sorted by
// first LSN.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			segs = append(segs, e.Name())
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		a, _ := parseSegName(segs[i])
		b, _ := parseSegName(segs[j])
		return a < b
	})
	return segs, nil
}

// writeSegHeader appends a fresh segment header to b.
func writeSegHeader(b []byte, firstLSN uint64) []byte {
	b = append(b, segMagic...)
	return binary.LittleEndian.AppendUint64(b, firstLSN)
}

// frameRecord appends the framed record — header, CRC, payload — to b.
func frameRecord(b []byte, lsn uint64, payload []byte) []byte {
	off := len(b)
	b = binary.LittleEndian.AppendUint64(b, lsn)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(b[off:off+12], crcTable), crcTable, payload)
	b = binary.LittleEndian.AppendUint32(b, crc)
	return append(b, payload...)
}

// scanResult is what scanSegment reports about one segment file.
type scanResult struct {
	firstLSN uint64
	lastLSN  uint64 // last valid record's LSN; firstLSN-1 if none
	validEnd int64  // byte offset just past the last valid record
	torn     bool   // the segment ends in a torn/corrupt tail past validEnd
	tornErr  error  // what the first bad record looked like
}

// scanSegment reads a segment, calling apply for each valid record's
// (lsn, payload) in order. prevLSN is the last LSN seen before this
// segment (the record stream must continue at prevLSN+1; records at or
// below skipBelow are skipped without replay but still validated). The
// scan stops at the first damaged record, reporting it via the result's
// torn fields — the caller decides whether that is a truncatable tail
// (final segment) or fatal corruption (earlier segment).
func scanSegment(path string, prevLSN, skipBelow uint64, apply func(lsn uint64, payload []byte) error) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, err
	}
	defer f.Close()
	var res scanResult
	hdr := make([]byte, segHdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		// A header-short file can only be a segment whose creation was
		// interrupted before any record existed: a truncatable tail.
		res.torn, res.tornErr = true, fmt.Errorf("wal: %s: short segment header", filepath.Base(path))
		return res, nil
	}
	if string(hdr[:8]) != segMagic {
		return res, fmt.Errorf("wal: %s: bad segment magic", filepath.Base(path))
	}
	res.firstLSN = binary.LittleEndian.Uint64(hdr[8:])
	if res.firstLSN != prevLSN+1 {
		return res, fmt.Errorf("wal: %s: segment starts at LSN %d, want %d (missing segment?)",
			filepath.Base(path), res.firstLSN, prevLSN+1)
	}
	res.lastLSN = res.firstLSN - 1
	res.validEnd = segHdrLen
	rhdr := make([]byte, recHdrLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, rhdr); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			res.torn, res.tornErr = true, fmt.Errorf("wal: %s: short record header at %d", filepath.Base(path), res.validEnd)
			return res, nil
		}
		lsn := binary.LittleEndian.Uint64(rhdr[:8])
		plen := binary.LittleEndian.Uint32(rhdr[8:12])
		crc := binary.LittleEndian.Uint32(rhdr[12:16])
		if plen > maxRecordLen || lsn != res.lastLSN+1 {
			res.torn, res.tornErr = true, fmt.Errorf("wal: %s: bad record frame at %d (lsn %d, len %d)",
				filepath.Base(path), res.validEnd, lsn, plen)
			return res, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			res.torn, res.tornErr = true, fmt.Errorf("wal: %s: short record payload at %d", filepath.Base(path), res.validEnd)
			return res, nil
		}
		got := crc32.Update(crc32.Checksum(rhdr[:12], crcTable), crcTable, payload)
		if got != crc {
			res.torn, res.tornErr = true, fmt.Errorf("wal: %s: CRC mismatch at %d (lsn %d)", filepath.Base(path), res.validEnd, lsn)
			return res, nil
		}
		if lsn > skipBelow {
			if err := apply(lsn, payload); err != nil {
				return res, err
			}
		}
		res.lastLSN = lsn
		res.validEnd += int64(recHdrLen) + int64(plen)
	}
}
