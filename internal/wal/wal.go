// Package wal gives the synthesized registry its durability half: a
// write-ahead logical redo log appended at every batch's commit point
// (core's CommitLogger hook), periodic registry-wide snapshots, and
// crash recovery that loads the newest valid snapshot and replays the
// redo tail through the ordinary Registry.Batch machinery.
//
// The unit of logging is one committed batch: core calls LogCommit after
// a batch's apply phase completes (2PL) or its read-set validates (OCC)
// but before any result is delivered, while every lock the batch holds
// is still held — so the log order of conflicting batches is exactly
// their serialization order, and any prefix of the log replays to a
// serializable prefix of the committed history. Records are
// length-prefixed and CRC-checked; recovery truncates a torn or
// corrupted tail in the final segment (an interrupted append that never
// acknowledged) and refuses corruption anywhere earlier.
//
// Group commit above is fsync batching below: the wire dispatcher closes
// a window, commits one registry batch (one LogCommit), then calls Sync
// once before releasing any reply — one fsync covers every client in the
// window. The SyncPolicy knob trades that guarantee down (SyncNone) or
// up (SyncAlways).
//
// Replay is idempotent — an insert is put-if-absent, a remove is an
// idempotent delete, so re-applying a suffix of already-applied ops is a
// no-op. Snapshots exploit that: Snapshot seals the log at the current
// LSN, rotates to a fresh segment, and only then dumps the registry
// (one consistent read-only batch), so the dump may include batches
// later than the seal — replaying them over the snapshot is harmless,
// and nothing newer than the seal is ever deleted.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/rel"
)

// Value tag bytes of the record and snapshot codecs. Every supported
// rel.Value dynamic type gets its own tag, so a decoded value has the
// exact dynamic type that was logged and recovered state is
// byte-for-byte comparable with a never-crashed oracle.
const (
	tagNil     = 0
	tagFalse   = 1
	tagTrue    = 2
	tagInt     = 3 // zigzag varint, dynamic type int
	tagInt64   = 4 // zigzag varint, dynamic type int64
	tagUint64  = 5 // uvarint
	tagFloat64 = 6 // 8 bytes, IEEE 754 bits little-endian
	tagString  = 7 // uvarint length + bytes
)

// appendValue appends the tagged encoding of one rel.Value.
func appendValue(b []byte, v rel.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case int:
		b = append(b, tagInt)
		return binary.AppendVarint(b, int64(x)), nil
	case int64:
		b = append(b, tagInt64)
		return binary.AppendVarint(b, x), nil
	case uint64:
		b = append(b, tagUint64)
		return binary.AppendUvarint(b, x), nil
	case float64:
		b = append(b, tagFloat64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(x)), nil
	case string:
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	default:
		return nil, fmt.Errorf("wal: unsupported value type %T", v)
	}
}

// decodeValue decodes one tagged value, returning it and the rest of b.
func decodeValue(b []byte) (rel.Value, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("wal: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagFalse:
		return false, b, nil
	case tagTrue:
		return true, b, nil
	case tagInt, tagInt64:
		x, n := binary.Varint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wal: bad varint value")
		}
		if tag == tagInt {
			return int(x), b[n:], nil
		}
		return x, b[n:], nil
	case tagUint64:
		x, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wal: bad uvarint value")
		}
		return x, b[n:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("wal: truncated float value")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
	case tagString:
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < n {
			return nil, nil, fmt.Errorf("wal: truncated string value")
		}
		return string(b[w : w+int(n)]), b[w+int(n):], nil
	default:
		return nil, nil, fmt.Errorf("wal: unknown value tag %d", tag)
	}
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decodeString decodes a uvarint-length-prefixed string.
func decodeString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < n {
		return "", nil, fmt.Errorf("wal: truncated string")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

// appendOps appends the payload encoding of one batch's redo ops: a
// uvarint op count, then per op a kind byte (1 insert, 0 remove), the
// relation name, the row and bound masks, and the tagged values of the
// columns RowMask binds, in ascending column order.
func appendOps(b []byte, ops []core.RedoOp) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		if op.Insert {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendString(b, op.Rel)
		b = binary.AppendUvarint(b, op.RowMask)
		b = binary.AppendUvarint(b, op.BoundMask)
		for mask := op.RowMask; mask != 0; {
			c := bits.TrailingZeros64(mask)
			mask &^= 1 << uint(c)
			var err error
			if b, err = appendValue(b, op.Vals[c]); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// decodeOps decodes a record payload back into redo ops; each op's Vals
// slice is freshly allocated and spans the highest column RowMask binds.
func decodeOps(b []byte) ([]core.RedoOp, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("wal: bad op count")
	}
	b = b[w:]
	if n > uint64(len(b)) { // each op takes >= 1 byte; cheap bound before allocating
		return nil, fmt.Errorf("wal: op count %d exceeds payload", n)
	}
	ops := make([]core.RedoOp, 0, n)
	for k := uint64(0); k < n; k++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("wal: truncated op")
		}
		kind := b[0]
		b = b[1:]
		if kind > 1 {
			return nil, fmt.Errorf("wal: unknown op kind %d", kind)
		}
		var op core.RedoOp
		op.Insert = kind == 1
		var err error
		if op.Rel, b, err = decodeString(b); err != nil {
			return nil, err
		}
		var rw int
		if op.RowMask, rw = binary.Uvarint(b); rw <= 0 {
			return nil, fmt.Errorf("wal: bad row mask")
		}
		b = b[rw:]
		if op.BoundMask, rw = binary.Uvarint(b); rw <= 0 {
			return nil, fmt.Errorf("wal: bad bound mask")
		}
		b = b[rw:]
		if op.RowMask == 0 || op.BoundMask&^op.RowMask != 0 {
			return nil, fmt.Errorf("wal: inconsistent op masks %x/%x", op.RowMask, op.BoundMask)
		}
		op.Vals = make([]rel.Value, bits.Len64(op.RowMask))
		for mask := op.RowMask; mask != 0; {
			i := bits.TrailingZeros64(mask)
			mask &^= 1 << uint(i)
			if op.Vals[i], b, err = decodeValue(b); err != nil {
				return nil, err
			}
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing payload bytes", len(b))
	}
	return ops, nil
}
