package wal

// Concurrent durability stress: several writer goroutines hammer a
// WAL-enabled registry while snapshots run underneath them, then the
// directory is recovered into a fresh registry and compared
// byte-for-byte against the live one — the never-crashed oracle IS the
// live registry, so the check proves that what the log and snapshots
// captured under real concurrency replays to exactly the state the
// locks serialized. Run under -race in CI's durability job.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/workload"
)

func TestConcurrentStressRecovery(t *testing.T) {
	const (
		writers = 4
		perG    = 120
	)
	dir := t.TempDir()
	soc := workload.MustSocial()
	m, err := Open(dir, soc.Reg, Options{SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	soc.Reg.SetCommitLogger(m)

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Disjoint author partition per goroutine: concurrency is
			// real (shared users rows, shared lock arrays) but the final
			// state is reached whatever the interleaving.
			for i := 0; i < perG; i++ {
				u := int64(g*1000 + i%13)
				err := soc.Reg.Batch(func(tx *core.Txn) error {
					if _, err := tx.InsertInto(soc.Users, rel.T("user", u), rel.T("posts", int64(i))); err != nil {
						return err
					}
					if _, err := tx.InsertInto(soc.Posts, rel.T("author", u, "post", int64(i)), rel.T("ts", int64(i))); err != nil {
						return err
					}
					if i%3 == 0 {
						if _, err := tx.RemoveFrom(soc.Posts, rel.T("author", u, "post", int64(i-1))); err != nil {
							return err
						}
					}
					_, err := tx.CountIn(soc.Posts, rel.T("author", u))
					return err
				})
				if err != nil {
					errs <- err
					return
				}
				if err := m.Sync(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}
	// One final explicit snapshot races nothing and exercises seal+prune
	// after the storm; then close and recover.
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rsoc, rm := recoverSocial(t, dir, Options{})
	defer rm.Close()
	if !bytes.Equal(stateBytes(t, soc.Reg), stateBytes(t, rsoc.Reg)) {
		t.Fatal("recovered state differs from the live registry after concurrent stress")
	}
}
