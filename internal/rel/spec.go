package rel

import (
	"fmt"
	"sort"
	"strings"
)

// FD is a functional dependency C1 → C2: any two tuples equal on the
// columns From are equal on the columns To (§2).
type FD struct {
	From []string
	To   []string
}

// String renders the dependency as "a, b → c".
func (fd FD) String() string {
	return strings.Join(fd.From, ", ") + " → " + strings.Join(fd.To, ", ")
}

// Spec is a relational specification: a set of column names together with a
// set of functional dependencies ∆ (§2). A Spec is the contract between the
// client and the synthesized representation.
type Spec struct {
	Columns []string
	FDs     []FD
}

// NewSpec builds and validates a specification. Column names must be
// unique and non-empty; every FD column must be declared.
func NewSpec(columns []string, fds ...FD) (Spec, error) {
	s := Spec{Columns: append([]string(nil), columns...), FDs: append([]FD(nil), fds...)}
	sort.Strings(s.Columns)
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MustSpec is NewSpec panicking on error, for literals in examples/tests.
func MustSpec(columns []string, fds ...FD) Spec {
	s, err := NewSpec(columns, fds...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural well-formedness of the specification.
func (s Spec) Validate() error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("rel: specification has no columns")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c == "" {
			return fmt.Errorf("rel: empty column name")
		}
		if seen[c] {
			return fmt.Errorf("rel: duplicate column %q", c)
		}
		seen[c] = true
	}
	for _, fd := range s.FDs {
		if len(fd.From) == 0 {
			return fmt.Errorf("rel: functional dependency %v has empty left-hand side", fd)
		}
		for _, c := range append(append([]string(nil), fd.From...), fd.To...) {
			if !seen[c] {
				return fmt.Errorf("rel: functional dependency %v uses undeclared column %q", fd, c)
			}
		}
	}
	return nil
}

// HasColumn reports whether c is a declared column.
func (s Spec) HasColumn(c string) bool {
	for _, x := range s.Columns {
		if x == c {
			return true
		}
	}
	return false
}

// Closure computes the attribute closure of cols under the spec's
// functional dependencies (the standard fixed-point algorithm). The result
// is sorted.
func (s Spec) Closure(cols []string) []string {
	in := make(map[string]bool, len(cols))
	for _, c := range cols {
		in[c] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range s.FDs {
			all := true
			for _, c := range fd.From {
				if !in[c] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, c := range fd.To {
				if !in[c] {
					in[c] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(in))
	for c := range in {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Determines reports whether ∆ ⊢ from → to, i.e. the columns `to` are in
// the closure of `from`.
func (s Spec) Determines(from, to []string) bool {
	cl := s.Closure(from)
	for _, c := range to {
		if !containsString(cl, c) {
			return false
		}
	}
	return true
}

// IsKey reports whether cols functionally determine every column of the
// relation — whether a tuple over cols is a key in the sense of §2.
func (s Spec) IsKey(cols []string) bool {
	return s.Determines(cols, s.Columns)
}

// String renders the spec as "{a, b, c | a, b → c}".
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString("{")
	b.WriteString(strings.Join(s.Columns, ", "))
	if len(s.FDs) > 0 {
		b.WriteString(" | ")
		for i, fd := range s.FDs {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(fd.String())
		}
	}
	b.WriteString("}")
	return b.String()
}

// containsString reports membership in a sorted string slice.
func containsString(sorted []string, c string) bool {
	i := sort.SearchStrings(sorted, c)
	return i < len(sorted) && sorted[i] == c
}

// ColsUnion returns the sorted union of two column sets.
func ColsUnion(a, b []string) []string {
	m := make(map[string]bool, len(a)+len(b))
	for _, c := range a {
		m[c] = true
	}
	for _, c := range b {
		m[c] = true
	}
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ColsMinus returns the sorted difference a \ b.
func ColsMinus(a, b []string) []string {
	m := make(map[string]bool, len(b))
	for _, c := range b {
		m[c] = true
	}
	out := make([]string, 0, len(a))
	for _, c := range a {
		if !m[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// ColsSubset reports whether every element of a is in b.
func ColsSubset(a, b []string) bool {
	m := make(map[string]bool, len(b))
	for _, c := range b {
		m[c] = true
	}
	for _, c := range a {
		if !m[c] {
			return false
		}
	}
	return true
}

// ColsEqual reports set equality of two column sets.
func ColsEqual(a, b []string) bool {
	return ColsSubset(a, b) && ColsSubset(b, a)
}

// ColsIntersect returns the sorted intersection of two column sets.
func ColsIntersect(a, b []string) []string {
	m := make(map[string]bool, len(b))
	for _, c := range b {
		m[c] = true
	}
	out := make([]string, 0, len(a))
	for _, c := range a {
		if m[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
