package rel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randOrdValue draws from every supported dynamic type, biased toward
// boundary values where encodings are easiest to get wrong.
func randOrdValue(rng *rand.Rand) Value {
	switch rng.Intn(7) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		picks := []int64{0, 1, -1, math.MinInt64, math.MaxInt64, rng.Int63(), -rng.Int63()}
		return picks[rng.Intn(len(picks))]
	case 3:
		return int(rng.Int31()) - (1 << 30)
	case 4:
		picks := []uint64{0, 1, math.MaxInt64, math.MaxInt64 + 1, math.MaxUint64, rng.Uint64()}
		return picks[rng.Intn(len(picks))]
	case 5:
		picks := []float64{0, math.Copysign(0, -1), 1.5, -1.5, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, rng.NormFloat64()}
		return picks[rng.Intn(len(picks))]
	default:
		alpha := []byte{0x00, 0x01, 'a', 'b', 0xff}
		n := rng.Intn(4)
		s := make([]byte, n)
		for i := range s {
			s[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(s)
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// TestOrderedValueEncoding quick-checks the core contract: byte comparison
// of encodings has the same sign as Compare, across and within types.
func TestOrderedValueEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		a, b := randOrdValue(rng), randOrdValue(rng)
		ea := AppendOrderedValue(nil, a)
		eb := AppendOrderedValue(nil, b)
		if got, want := sign(bytes.Compare(ea, eb)), sign(Compare(a, b)); got != want {
			t.Fatalf("enc order of %v (%T) vs %v (%T): bytes %d, Compare %d\n% x\n% x",
				a, a, b, b, got, want, ea, eb)
		}
	}
}

// TestOrderedKeyEncoding checks concatenated encodings against CompareKeys
// for equal-arity keys (the lock-ID case: one node ⇒ one arity).
func TestOrderedKeyEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		n := rng.Intn(3) + 1
		av := make([]Value, n)
		bv := make([]Value, n)
		for j := 0; j < n; j++ {
			av[j] = randOrdValue(rng)
			bv[j] = randOrdValue(rng)
		}
		a, b := NewKey(av...), NewKey(bv...)
		ea := AppendOrderedKey(nil, a)
		eb := AppendOrderedKey(nil, b)
		if got, want := sign(bytes.Compare(ea, eb)), sign(CompareKeys(a, b)); got != want {
			t.Fatalf("key enc order of %v vs %v: bytes %d, CompareKeys %d", a, b, got, want)
		}
	}
}

// TestOrderedStringEdgeCases pins the escape/terminator construction on
// the classic traps: embedded NUL, prefixes, and 0x01/0xff content.
func TestOrderedStringEdgeCases(t *testing.T) {
	strs := []string{"", "\x00", "\x00\x00", "\x01", "a", "a\x00", "a\x00b", "a\x01", "ab", "b", "\xff"}
	for _, a := range strs {
		for _, b := range strs {
			ea := AppendOrderedValue(nil, a)
			eb := AppendOrderedValue(nil, b)
			if got, want := sign(bytes.Compare(ea, eb)), sign(Compare(a, b)); got != want {
				t.Fatalf("string enc order of %q vs %q: bytes %d, Compare %d", a, b, got, want)
			}
		}
	}
}
