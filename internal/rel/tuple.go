package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is an immutable mapping from column names to values
// (t = ⟨c1:v1, c2:v2, …⟩ in §2). Columns are stored sorted so that
// structural equality, matching and projection are cheap and
// deterministic. The zero Tuple is the empty tuple ⟨⟩.
type Tuple struct {
	cols []string
	vals []Value
}

// T builds a tuple from alternating column-name / value pairs:
//
//	T("src", 1, "dst", 2, "weight", 42)
//
// It panics on odd argument counts, non-string column names, duplicate
// columns, or unsupported value types; it is intended for literals in
// examples and tests. Use NewTuple for checked construction.
func T(pairs ...any) Tuple {
	t, err := NewTuple(pairs...)
	if err != nil {
		panic(err)
	}
	return t
}

// NewTuple builds a tuple from alternating column/value pairs, reporting
// malformed input as an error.
func NewTuple(pairs ...any) (Tuple, error) {
	if len(pairs)%2 != 0 {
		return Tuple{}, fmt.Errorf("rel: NewTuple needs column/value pairs, got %d arguments", len(pairs))
	}
	n := len(pairs) / 2
	cols := make([]string, 0, n)
	vals := make([]Value, 0, n)
	for i := 0; i < len(pairs); i += 2 {
		c, ok := pairs[i].(string)
		if !ok {
			return Tuple{}, fmt.Errorf("rel: column name must be a string, got %T", pairs[i])
		}
		if !ValidValue(pairs[i+1]) {
			return Tuple{}, fmt.Errorf("rel: unsupported value type %T for column %q", pairs[i+1], c)
		}
		cols = append(cols, c)
		vals = append(vals, pairs[i+1])
	}
	return makeTuple(cols, vals)
}

// makeTuple sorts the column/value pairs by column and rejects duplicates.
// Tuples of width ≤ 2 — the common case in keys — avoid the general
// sorting machinery.
func makeTuple(cols []string, vals []Value) (Tuple, error) {
	switch len(cols) {
	case 0:
		return Tuple{}, nil
	case 1:
		return Tuple{cols: cols, vals: vals}, nil
	case 2:
		switch {
		case cols[0] == cols[1]:
			return Tuple{}, fmt.Errorf("rel: duplicate column %q", cols[0])
		case cols[0] < cols[1]:
			return Tuple{cols: cols, vals: vals}, nil
		default:
			cols[0], cols[1] = cols[1], cols[0]
			vals[0], vals[1] = vals[1], vals[0]
			return Tuple{cols: cols, vals: vals}, nil
		}
	}
	idx := make([]int, len(cols))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cols[idx[a]] < cols[idx[b]] })
	sc := make([]string, len(cols))
	sv := make([]Value, len(cols))
	for i, j := range idx {
		sc[i] = cols[j]
		sv[i] = vals[j]
	}
	for i := 1; i < len(sc); i++ {
		if sc[i] == sc[i-1] {
			return Tuple{}, fmt.Errorf("rel: duplicate column %q", sc[i])
		}
	}
	return Tuple{cols: sc, vals: sv}, nil
}

// Len returns the number of columns in the tuple.
func (t Tuple) Len() int { return len(t.cols) }

// Dom returns the tuple's columns (dom t), sorted. The slice is shared;
// callers must not mutate it.
func (t Tuple) Dom() []string { return t.cols }

// Get returns the value of column c and whether it is present.
func (t Tuple) Get(c string) (Value, bool) {
	i := sort.SearchStrings(t.cols, c)
	if i < len(t.cols) && t.cols[i] == c {
		return t.vals[i], true
	}
	return nil, false
}

// MustGet returns the value of column c, panicking if absent. For use in
// code paths where presence has already been validated.
func (t Tuple) MustGet(c string) Value {
	v, ok := t.Get(c)
	if !ok {
		panic(fmt.Sprintf("rel: tuple %v has no column %q", t, c))
	}
	return v
}

// Has reports whether column c is present.
func (t Tuple) Has(c string) bool {
	_, ok := t.Get(c)
	return ok
}

// HasAll reports whether every column in cols is present.
func (t Tuple) HasAll(cols []string) bool {
	for _, c := range cols {
		if !t.Has(c) {
			return false
		}
	}
	return true
}

// Project returns π_cols(t): the tuple restricted to the given columns.
// Columns absent from t are skipped.
func (t Tuple) Project(cols []string) Tuple {
	pc := make([]string, 0, len(cols))
	pv := make([]Value, 0, len(cols))
	for _, c := range cols {
		if v, ok := t.Get(c); ok {
			pc = append(pc, c)
			pv = append(pv, v)
		}
	}
	p, err := makeTuple(pc, pv)
	if err != nil {
		panic(err) // unreachable: cols of a valid tuple are unique
	}
	return p
}

// Union returns t ∪ s. The domains may overlap only on columns where the
// values agree; a conflicting overlap is an error.
func (t Tuple) Union(s Tuple) (Tuple, error) {
	cols := make([]string, 0, len(t.cols)+len(s.cols))
	vals := make([]Value, 0, len(t.cols)+len(s.cols))
	cols = append(cols, t.cols...)
	vals = append(vals, t.vals...)
	for i, c := range s.cols {
		if v, ok := t.Get(c); ok {
			if !Equal(v, s.vals[i]) {
				return Tuple{}, fmt.Errorf("rel: union conflict on column %q: %v vs %v", c, v, s.vals[i])
			}
			continue
		}
		cols = append(cols, c)
		vals = append(vals, s.vals[i])
	}
	return makeTuple(cols, vals)
}

// MustUnion is Union panicking on conflict; for internal joins where
// disjointness is known by construction.
func (t Tuple) MustUnion(s Tuple) Tuple {
	u, err := t.Union(s)
	if err != nil {
		panic(err)
	}
	return u
}

// MergeSorted returns the union of t with the tuple (cols, vals), where
// cols is sorted ascending with no duplicates. Columns present in both
// must hold equal values (the caller has already checked agreement); t's
// value is kept. This is the allocation-lean fast path behind scan joins:
// unlike Union it performs a single linear merge with no re-sorting.
func (t Tuple) MergeSorted(cols []string, vals []Value) Tuple {
	mc := make([]string, 0, len(t.cols)+len(cols))
	mv := make([]Value, 0, len(t.cols)+len(cols))
	i, j := 0, 0
	for i < len(t.cols) && j < len(cols) {
		switch {
		case t.cols[i] < cols[j]:
			mc = append(mc, t.cols[i])
			mv = append(mv, t.vals[i])
			i++
		case t.cols[i] > cols[j]:
			mc = append(mc, cols[j])
			mv = append(mv, vals[j])
			j++
		default:
			mc = append(mc, t.cols[i])
			mv = append(mv, t.vals[i])
			i++
			j++
		}
	}
	for ; i < len(t.cols); i++ {
		mc = append(mc, t.cols[i])
		mv = append(mv, t.vals[i])
	}
	for ; j < len(cols); j++ {
		mc = append(mc, cols[j])
		mv = append(mv, vals[j])
	}
	return Tuple{cols: mc, vals: mv}
}

// Extends reports t ⊇ s: every column of s is present in t with an equal
// value.
func (t Tuple) Extends(s Tuple) bool {
	for i, c := range s.cols {
		v, ok := t.Get(c)
		if !ok || !Equal(v, s.vals[i]) {
			return false
		}
	}
	return true
}

// Matches reports t ∼ s: the tuples agree on all common columns.
func (t Tuple) Matches(s Tuple) bool {
	for i, c := range s.cols {
		if v, ok := t.Get(c); ok && !Equal(v, s.vals[i]) {
			return false
		}
	}
	return true
}

// Equal reports structural equality: same domain, same values.
func (t Tuple) Equal(s Tuple) bool {
	if len(t.cols) != len(s.cols) {
		return false
	}
	for i := range t.cols {
		if t.cols[i] != s.cols[i] || !Equal(t.vals[i], s.vals[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples first by domain (lexicographically over column
// names) and then by values in column order. It is a total order on
// tuples, used for deterministic iteration in tests and tools.
func (t Tuple) Compare(s Tuple) int {
	n := len(t.cols)
	if len(s.cols) < n {
		n = len(s.cols)
	}
	for i := 0; i < n; i++ {
		if t.cols[i] != s.cols[i] {
			if t.cols[i] < s.cols[i] {
				return -1
			}
			return 1
		}
		if c := Compare(t.vals[i], s.vals[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(t.cols)), int64(len(s.cols)))
}

// Hash returns a hash of the tuple consistent with Equal.
func (t Tuple) Hash() uint64 {
	h := uint64(fnvOffset)
	for i, c := range t.cols {
		h = hashBytes(h, []byte(c))
		h = hashValue(h, t.vals[i])
	}
	return h
}

// Key projects the tuple onto the given ordered column list and returns a
// container key. All columns must be present.
func (t Tuple) Key(cols []string) Key {
	vals := make([]Value, len(cols))
	for i, c := range cols {
		v, ok := t.Get(c)
		if !ok {
			panic(fmt.Sprintf("rel: tuple %v missing key column %q", t, c))
		}
		vals[i] = v
	}
	return Key{vals: vals}
}

// String renders the tuple as ⟨c1: v1, c2: v2⟩ in the paper's notation.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, c := range t.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", c, FormatValue(t.vals[i]))
	}
	b.WriteString("⟩")
	return b.String()
}

// Key is a tuple projected onto a fixed, ordered list of columns: the key
// type of every container in internal/container. The column list itself is
// carried by the decomposition edge, not the key, so keys are compact and
// comparisons are positional.
type Key struct {
	vals []Value
}

// NewKey builds a key directly from values, in edge-column order.
func NewKey(vals ...Value) Key {
	vs := make([]Value, len(vals))
	copy(vs, vals)
	return Key{vals: vs}
}

// Clone returns a key backed by freshly allocated storage. Use it when a
// key carved from transient storage (an operation's key arena) must
// outlive the operation — e.g. when an undo log re-inserts a container
// entry after the arena is recycled.
func (k Key) Clone() Key { return NewKey(k.vals...) }

// Len returns the number of key columns.
func (k Key) Len() int { return len(k.vals) }

// At returns the i'th key value.
func (k Key) At(i int) Value { return k.vals[i] }

// Values returns the key's values; callers must not mutate the slice.
func (k Key) Values() []Value { return k.vals }

// Tuple re-attaches column names (in the same order used to build the key)
// and returns the corresponding tuple.
func (k Key) Tuple(cols []string) Tuple {
	if len(cols) != len(k.vals) {
		panic(fmt.Sprintf("rel: key width %d does not match %d columns", len(k.vals), len(cols)))
	}
	t, err := makeTuple(append([]string(nil), cols...), append([]Value(nil), k.vals...))
	if err != nil {
		panic(err)
	}
	return t
}

// CompareKeys orders keys lexicographically by position using the global
// value order; keys of different widths never meet in one container, but
// shorter keys order first for totality.
func CompareKeys(a, b Key) int {
	n := len(a.vals)
	if len(b.vals) < n {
		n = len(b.vals)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a.vals[i], b.vals[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a.vals)), int64(len(b.vals)))
}

// Hash returns a 64-bit hash of the key consistent with CompareKeys
// equality.
func (k Key) Hash() uint64 {
	h := uint64(fnvOffset)
	for _, v := range k.vals {
		h = hashValue(h, v)
	}
	return h
}

// Equal reports CompareKeys(k, o) == 0.
func (k Key) Equal(o Key) bool { return CompareKeys(k, o) == 0 }

// String renders the key as (v1, v2, …).
func (k Key) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, v := range k.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(FormatValue(v))
	}
	b.WriteString(")")
	return b.String()
}
