package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	tu := T("src", 1, "dst", 2, "weight", 42)
	if tu.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tu.Len())
	}
	if got := tu.Dom(); len(got) != 3 || got[0] != "dst" || got[1] != "src" || got[2] != "weight" {
		t.Fatalf("Dom = %v, want sorted [dst src weight]", got)
	}
	v, ok := tu.Get("src")
	if !ok || !Equal(v, 1) {
		t.Fatalf("Get(src) = %v, %v", v, ok)
	}
	if _, ok := tu.Get("missing"); ok {
		t.Fatal("Get(missing) should be absent")
	}
	if !tu.Has("weight") || tu.Has("nope") {
		t.Fatal("Has misbehaves")
	}
	if !tu.HasAll([]string{"src", "dst"}) || tu.HasAll([]string{"src", "nope"}) {
		t.Fatal("HasAll misbehaves")
	}
}

func TestNewTupleErrors(t *testing.T) {
	if _, err := NewTuple("a"); err == nil {
		t.Error("odd arity should fail")
	}
	if _, err := NewTuple(1, 2); err == nil {
		t.Error("non-string column should fail")
	}
	if _, err := NewTuple("a", 1, "a", 2); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewTuple("a", []int{1}); err == nil {
		t.Error("unsupported value should fail")
	}
}

func TestTupleProject(t *testing.T) {
	tu := T("a", 1, "b", 2, "c", 3)
	p := tu.Project([]string{"c", "a", "zz"})
	if p.Len() != 2 {
		t.Fatalf("projection len = %d, want 2", p.Len())
	}
	if !p.Equal(T("a", 1, "c", 3)) {
		t.Fatalf("projection = %v", p)
	}
}

func TestTupleUnion(t *testing.T) {
	a := T("x", 1)
	b := T("y", 2)
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(T("x", 1, "y", 2)) {
		t.Fatalf("union = %v", u)
	}
	// Overlap with agreement is fine.
	c := T("x", 1, "z", 3)
	u2, err := a.Union(c)
	if err != nil {
		t.Fatal(err)
	}
	if !u2.Equal(T("x", 1, "z", 3)) {
		t.Fatalf("union = %v", u2)
	}
	// Conflicting overlap errors.
	if _, err := a.Union(T("x", 99)); err == nil {
		t.Fatal("conflicting union should fail")
	}
}

func TestTupleExtendsMatches(t *testing.T) {
	full := T("src", 1, "dst", 2, "weight", 42)
	if !full.Extends(T("src", 1)) {
		t.Error("full should extend ⟨src:1⟩")
	}
	if full.Extends(T("src", 2)) {
		t.Error("full should not extend ⟨src:2⟩")
	}
	if !full.Extends(T()) {
		t.Error("any tuple extends the empty tuple")
	}
	// Matches: agree on common columns only.
	if !full.Matches(T("src", 1, "other", 9)) {
		t.Error("should match on disjoint extra column")
	}
	if full.Matches(T("dst", 3)) {
		t.Error("should not match differing dst")
	}
}

func TestTupleCompareEqualHash(t *testing.T) {
	a := T("p", 1, "q", "x")
	b := T("q", "x", "p", 1) // same content, different build order
	if !a.Equal(b) || a.Compare(b) != 0 || a.Hash() != b.Hash() {
		t.Fatal("order of construction should not matter")
	}
	c := T("p", 1, "q", "y")
	if a.Equal(c) || a.Compare(c) == 0 {
		t.Fatal("different tuples compare equal")
	}
	if a.Compare(c) != -c.Compare(a) {
		t.Fatal("Compare not antisymmetric")
	}
}

func TestTupleString(t *testing.T) {
	s := T("name", "a", "parent", 1).String()
	want := `⟨name: "a", parent: 1⟩`
	if s != want {
		t.Fatalf("String = %s, want %s", s, want)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	tu := T("src", 7, "dst", 8, "weight", 9)
	k := tu.Key([]string{"dst", "src"}) // note: explicit edge order
	if k.Len() != 2 || !Equal(k.At(0), 8) || !Equal(k.At(1), 7) {
		t.Fatalf("key = %v", k)
	}
	back := k.Tuple([]string{"dst", "src"})
	if !back.Equal(T("src", 7, "dst", 8)) {
		t.Fatalf("round trip = %v", back)
	}
}

func TestKeyMissingColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	T("a", 1).Key([]string{"b"})
}

func TestCompareKeys(t *testing.T) {
	a := NewKey(1, "x")
	b := NewKey(1, "y")
	c := NewKey(2, "a")
	if CompareKeys(a, b) >= 0 || CompareKeys(b, c) >= 0 || CompareKeys(a, c) >= 0 {
		t.Fatal("lexicographic order broken")
	}
	if CompareKeys(a, a) != 0 || !a.Equal(NewKey(1, "x")) {
		t.Fatal("equality broken")
	}
	if CompareKeys(NewKey(1), NewKey(1, 0)) >= 0 {
		t.Fatal("shorter key should order first")
	}
}

func TestKeyHashEquality(t *testing.T) {
	a := NewKey(int64(3), "s")
	b := NewKey(3, "s")
	if a.Hash() != b.Hash() {
		t.Fatal("equal keys must hash alike")
	}
}

// Property: Project(t, Dom(t)) == t, and union with empty is identity.
func TestTupleAlgebraProperties(t *testing.T) {
	gen := func(r *rand.Rand) Tuple {
		n := r.Intn(4)
		pairs := make([]any, 0, 2*n)
		cols := []string{"a", "b", "c", "d"}
		r.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		for i := 0; i < n; i++ {
			pairs = append(pairs, cols[i], r.Intn(100))
		}
		return T(pairs...)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tu := gen(r)
		if !tu.Project(tu.Dom()).Equal(tu) {
			t.Fatalf("Project identity fails for %v", tu)
		}
		u, err := tu.Union(T())
		if err != nil || !u.Equal(tu) {
			t.Fatalf("Union identity fails for %v", tu)
		}
		if !tu.Extends(tu) || !tu.Matches(tu) {
			t.Fatalf("reflexivity fails for %v", tu)
		}
	}
}

func TestKeyCompareProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		ka := NewKey(int64(a1), int64(a2))
		kb := NewKey(int64(b1), int64(b2))
		c := CompareKeys(ka, kb)
		if c == 0 {
			return ka.Hash() == kb.Hash()
		}
		return c == -CompareKeys(kb, ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
