// Package rel implements the relational substrate of the paper
// "Concurrent Data Representation Synthesis" (Hawkins et al., PLDI 2012):
// untyped values, tuples, relational specifications (columns plus
// functional dependencies), and the relational-algebra helpers used by the
// decomposition compiler.
//
// Values are dynamically typed. A single total order and a single hash
// function over values (Compare and Hash) back every container
// implementation and the global physical-lock order of §5.1, so the whole
// system agrees on ordering.
package rel

import (
	"fmt"
	"math"
)

// Value is a dynamically typed relational value, drawn from the universe V
// of §2. Supported dynamic types are bool, int, int64, uint64, float64 and
// string. Other types panic in Compare and Hash; the public API validates
// inputs before they reach this package.
type Value any

// typeRank gives the cross-type component of the total order on values.
// Values of different dynamic types compare by rank, so the order is total
// even for heterogeneous columns.
func typeRank(v Value) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int, int64, uint64:
		return 2
	case float64:
		return 3
	case string:
		return 4
	default:
		panic(fmt.Sprintf("rel: unsupported value type %T", v))
	}
}

// asInt normalizes the integer kinds onto int64 plus an overflow flag for
// uint64 values above MaxInt64.
func asInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), false
	case int64:
		return x, false
	case uint64:
		if x > math.MaxInt64 {
			return int64(x - math.MaxInt64 - 1), true
		}
		return int64(x), false
	}
	panic(fmt.Sprintf("rel: not an integer value: %T", v))
}

// Compare returns -1, 0 or +1 ordering a before, equal to, or after b.
// The order is total over all supported values: first by type rank, then by
// the natural order within the type. It is the single ordering used by the
// sorted containers and by the lock order of §5.1.
func Compare(a, b Value) int {
	// Fast path: int64 is the dominant key type in every workload here,
	// and lock-order sorts compare keys heavily; one type assertion pair
	// beats the rank dispatch below.
	if x, ok := a.(int64); ok {
		if y, ok := b.(int64); ok {
			return cmpInt(x, y)
		}
	}
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return cmpInt(int64(ra), int64(rb))
	}
	switch ra {
	case 0: // both nil
		return 0
	case 1:
		x, y := a.(bool), b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case 2:
		xa, oa := asInt(a)
		xb, ob := asInt(b)
		if oa != ob {
			// Exactly one operand exceeds MaxInt64.
			if ob {
				return -1
			}
			return 1
		}
		return cmpInt(xa, xb)
	case 3:
		x, y := a.(float64), b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	default:
		x, y := a.(string), b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// fnv-1a constants, 64 bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// Hash returns a 64-bit hash of v, consistent with Compare-equality for
// values of the same dynamic type class (all integer kinds hash alike).
func Hash(v Value) uint64 {
	return hashValue(fnvOffset, v)
}

func hashValue(h uint64, v Value) uint64 {
	switch x := v.(type) {
	case nil:
		return hashUint64(h, 0xdead)
	case bool:
		if x {
			return hashUint64(h, 1)
		}
		return hashUint64(h, 2)
	case int:
		return hashUint64(h, uint64(int64(x)))
	case int64:
		return hashUint64(h, uint64(x))
	case uint64:
		return hashUint64(h, x)
	case float64:
		return hashUint64(h, math.Float64bits(x))
	case string:
		return hashBytes(h, []byte(x))
	default:
		panic(fmt.Sprintf("rel: unsupported value type %T", v))
	}
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ValidValue reports whether v has one of the supported dynamic types.
func ValidValue(v Value) bool {
	switch v.(type) {
	case nil, bool, int, int64, uint64, float64, string:
		return true
	default:
		return false
	}
}

// FormatValue renders a value the way tuples print: strings quoted,
// numbers bare.
func FormatValue(v Value) string {
	if s, ok := v.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprint(v)
}
