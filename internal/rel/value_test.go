package rel

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareTotalOrderWithinType(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{1, 2, -1},
		{2, 1, 1},
		{7, 7, 0},
		{int64(5), 5, 0},
		{uint64(5), int64(5), 0},
		{uint64(math.MaxUint64), int64(math.MaxInt64), 1},
		{int64(-1), uint64(math.MaxUint64), -1},
		{"a", "b", -1},
		{"b", "a", 1},
		{"same", "same", 0},
		{1.5, 2.5, -1},
		{2.5, 2.5, 0},
		{false, true, -1},
		{true, true, 0},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossTypeRank(t *testing.T) {
	// nil < bool < integers < float64 < string
	ordered := []Value{nil, false, true, -3, int64(0), uint64(9), 1.5, "a"}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0 && !(sameClass(ordered[i], ordered[j]) && got == 0):
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0 && !(sameClass(ordered[i], ordered[j]) && got == 0):
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func sameClass(a, b Value) bool { return typeRank(a) == typeRank(b) }

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitiveProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		vals := []Value{a, b, c}
		sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
		return Compare(vals[0], vals[1]) <= 0 && Compare(vals[1], vals[2]) <= 0 && Compare(vals[0], vals[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashConsistentWithEquality(t *testing.T) {
	pairs := [][2]Value{
		{1, int64(1)},
		{int64(42), uint64(42)},
		{uint64(7), 7},
	}
	for _, p := range pairs {
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%v) != Hash(%v) for equal values", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		h := Hash(i)
		if seen[h] {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = true
	}
}

func TestValidValue(t *testing.T) {
	for _, v := range []Value{nil, true, 1, int64(1), uint64(1), 1.5, "x"} {
		if !ValidValue(v) {
			t.Errorf("ValidValue(%v) = false, want true", v)
		}
	}
	if ValidValue([]int{1}) {
		t.Error("ValidValue(slice) = true, want false")
	}
	if ValidValue(int32(1)) {
		t.Error("ValidValue(int32) = true, want false")
	}
}

func TestCompareUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported type")
		}
	}()
	Compare([]int{1}, 2)
}

func TestFormatValue(t *testing.T) {
	if got := FormatValue("hi"); got != `"hi"` {
		t.Errorf("FormatValue(hi) = %s", got)
	}
	if got := FormatValue(42); got != "42" {
		t.Errorf("FormatValue(42) = %s", got)
	}
}
