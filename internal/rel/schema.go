package rel

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxSchemaColumns bounds the width of a Schema: a Row tracks its bound
// columns in a single machine word, which caps relations at 64 columns.
// Specifications in the paper (and every workload here) have a handful.
const MaxSchemaColumns = 64

// Schema assigns every column of a relational specification a dense
// integer index, fixed at synthesis time. It is the bridge between the
// name-oriented relational surface (Tuple, Spec) and the index-oriented
// execution pipeline (Row): the planner resolves column names against the
// schema once per compiled plan, and the executor then runs on integer
// offsets with no string comparisons.
//
// Slot-ordering invariant: indices follow the SORTED order of the column
// names (index 0 is the lexicographically smallest column). Everything
// compiled against a schema relies on this: Tuple↔Row conversion is a
// single linear merge (both sides sorted), instance keys gathered through
// per-node index lists are in sorted column order (the order lock IDs and
// container keys assume), and a row's bound-column set round-trips
// through TupleOfRow without re-sorting. Indices are dense and stable for
// the life of the Schema; two Schemas over the same column set assign
// identical indices.
type Schema struct {
	cols []string // sorted ascending, unique
}

// NewSchema builds a schema over the given columns (deduplicated and
// sorted). It fails beyond MaxSchemaColumns columns or on empty names.
func NewSchema(cols []string) (*Schema, error) {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, c := range sorted {
		if c == "" {
			return nil, fmt.Errorf("rel: schema column name must be non-empty")
		}
		if i > 0 && c == sorted[i-1] {
			continue
		}
		out = append(out, c)
	}
	if len(out) > MaxSchemaColumns {
		return nil, fmt.Errorf("rel: schema has %d columns, max %d", len(out), MaxSchemaColumns)
	}
	return &Schema{cols: out}, nil
}

// MustSchema is NewSchema panicking on error, for schemas derived from
// already-validated specifications.
func MustSchema(cols []string) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns (the width of every Row).
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the schema's columns in index order (sorted). The slice
// is shared; callers must not mutate it.
func (s *Schema) Columns() []string { return s.cols }

// Column returns the name of column i.
func (s *Schema) Column(i int) string { return s.cols[i] }

// IndexOf returns the dense index of column c and whether it exists.
func (s *Schema) IndexOf(c string) (int, bool) {
	i := sort.SearchStrings(s.cols, c)
	if i < len(s.cols) && s.cols[i] == c {
		return i, true
	}
	return -1, false
}

// MustIndex is IndexOf panicking on unknown columns; for plan compilation
// over validated specs.
func (s *Schema) MustIndex(c string) int {
	i, ok := s.IndexOf(c)
	if !ok {
		panic(fmt.Sprintf("rel: schema %v has no column %q", s.cols, c))
	}
	return i
}

// Indices resolves a column list to dense indices, preserving order.
func (s *Schema) Indices(cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = s.MustIndex(c)
	}
	return idx
}

// Mask returns the bound-column bitmask covering cols.
func (s *Schema) Mask(cols []string) uint64 {
	var m uint64
	for _, c := range cols {
		m |= 1 << uint(s.MustIndex(c))
	}
	return m
}

// FullMask returns the mask with every schema column bound.
func (s *Schema) FullMask() uint64 {
	if len(s.cols) == 64 {
		return ^uint64(0)
	}
	return (1 << uint(len(s.cols))) - 1
}

// NewRow allocates an empty row of the schema's width.
func (s *Schema) NewRow() Row {
	return Row{vals: make([]Value, len(s.cols))}
}

// RowFromTuple converts a tuple into a dense row. When buf has the
// schema's width it is used as the row's backing storage (no allocation);
// otherwise a fresh slice is allocated. Unknown columns are an error.
// Both the tuple's domain and the schema's columns are sorted, so the
// conversion is a single linear merge.
func (s *Schema) RowFromTuple(t Tuple, buf []Value) (Row, error) {
	vals := buf
	if len(vals) != len(s.cols) {
		vals = make([]Value, len(s.cols))
	}
	var mask uint64
	j := 0
	for i, c := range t.cols {
		for j < len(s.cols) && s.cols[j] < c {
			j++
		}
		if j >= len(s.cols) || s.cols[j] != c {
			return Row{}, fmt.Errorf("rel: tuple column %q not in schema %v", c, s.cols)
		}
		vals[j] = t.vals[i]
		mask |= 1 << uint(j)
	}
	return Row{vals: vals, mask: mask}, nil
}

// TupleOfRow converts the row's bound columns back into a Tuple. The
// schema's column order is the sorted order, so no re-sorting is needed.
func (s *Schema) TupleOfRow(r Row) Tuple {
	n := bits.OnesCount64(r.mask)
	cols := make([]string, 0, n)
	vals := make([]Value, 0, n)
	for i := range s.cols {
		if r.mask&(1<<uint(i)) != 0 {
			cols = append(cols, s.cols[i])
			vals = append(vals, r.vals[i])
		}
	}
	return Tuple{cols: cols, vals: vals}
}

// Row is a dense relational tuple: one value slot per schema column, plus
// a bitmask of the columns currently bound. Rows are the execution-time
// representation of query states and operation inputs — every column
// access is an integer index, every "does this bind c?" test a bit test.
// The zero Row is invalid; obtain rows from a Schema or RowOver.
//
// Bound-mask semantics: bit i of the mask means "slot i holds the value
// of schema column i". Slots whose bit is clear are STALE, not zero —
// recycled rows keep old values, and ClearMask/SetMask deliberately avoid
// touching storage. Consequently: At(i) is only meaningful when bit i is
// set (use Get for a checked read); Set(i, v) stores and sets the bit;
// SetMask may only NARROW a mask to a subset of truly-bound columns (the
// mutation pipeline narrows a fully bound operation row to its key
// columns this way) — widening it would expose stale slots as if bound.
// Aggregations over subsets (HashAt, KeyAt, AppendKeyAt) trust the caller
// that every index is bound.
type Row struct {
	vals []Value
	mask uint64
}

// RowOver wraps an existing value slice (one slot per schema column) and
// bound mask without copying. The caller retains ownership of vals and
// must not mutate slots named by mask while the row is in use.
func RowOver(vals []Value, mask uint64) Row { return Row{vals: vals, mask: mask} }

// Width returns the number of value slots.
func (r Row) Width() int { return len(r.vals) }

// Mask returns the bound-column bitmask.
func (r Row) Mask() uint64 { return r.mask }

// Has reports whether column i is bound.
func (r Row) Has(i int) bool { return r.mask&(1<<uint(i)) != 0 }

// BindsAll reports whether every column of mask is bound.
func (r Row) BindsAll(mask uint64) bool { return r.mask&mask == mask }

// At returns the value of column i. The column must be bound; reading an
// unbound slot returns stale or zero data.
func (r Row) At(i int) Value { return r.vals[i] }

// Get returns the value of column i and whether it is bound.
func (r Row) Get(i int) (Value, bool) {
	if !r.Has(i) {
		return nil, false
	}
	return r.vals[i], true
}

// Set binds column i to v.
func (r *Row) Set(i int, v Value) {
	r.vals[i] = v
	r.mask |= 1 << uint(i)
}

// ClearMask unbinds every column (values become stale but unreachable).
func (r *Row) ClearMask() { r.mask = 0 }

// CopyFrom overwrites this row with src's values and mask. Both rows must
// have the same width.
func (r *Row) CopyFrom(src Row) {
	copy(r.vals, src.vals)
	r.mask = src.mask
}

// SetMask overrides the bound mask (used to narrow a fully bound row to
// its key columns without touching values).
func (r *Row) SetMask(m uint64) { r.mask = m }

// HashAt hashes the values at the given indices, in order, with the same
// algorithm as Key.Hash — so stripe selection over rows agrees with
// stripe selection over tuples.
func (r Row) HashAt(idx []int) uint64 {
	h := uint64(fnvOffset)
	for _, i := range idx {
		h = hashValue(h, r.vals[i])
	}
	return h
}

// AppendKeyAt gathers the values at idx into buf (growing it as needed)
// and returns the filled buffer. Wrap the result with KeyOver for a
// transient container key.
func (r Row) AppendKeyAt(idx []int, buf []Value) []Value {
	for _, i := range idx {
		buf = append(buf, r.vals[i])
	}
	return buf
}

// KeyAt gathers a fresh container key from the values at idx, in order.
func (r Row) KeyAt(idx []int) Key {
	vals := make([]Value, len(idx))
	for j, i := range idx {
		vals[j] = r.vals[i]
	}
	return Key{vals: vals}
}

// KeyOver wraps a value slice as a container key without copying. The
// caller must not mutate vals while the key is in use, and the key must
// not be stored in a container (containers retain inserted keys); use
// KeyAt / NewKey for keys that outlive the call.
func KeyOver(vals []Value) Key { return Key{vals: vals} }

// TupleFromSorted builds a tuple directly from a column list that is
// already sorted ascending and duplicate-free, taking ownership of both
// slices. It is the allocation-lean constructor behind row→tuple
// projection; callers must guarantee the precondition.
func TupleFromSorted(cols []string, vals []Value) Tuple {
	return Tuple{cols: cols, vals: vals}
}
