package rel

import (
	"encoding/binary"
	"math"
)

// This file implements an order-preserving byte encoding of values and
// keys: for any two values a and b, bytes.Compare(enc(a), enc(b)) has the
// same sign as Compare(a, b). The locking substrate encodes every physical
// lock's identity once at lock-array construction time, so the
// growing-phase sorts of batched transactions compare flat []byte instead
// of walking dynamically typed keys — and the registry-wide lock order
// (relation id, node, instance key, stripe) becomes one memcmp.
//
// Each value encodes as a type-rank tag byte followed by a self-delimiting
// payload, so concatenated encodings compare elementwise exactly like
// CompareKeys. NaN float values are not supported (Compare itself is not
// a total order over NaN).

// Tag bytes mirror typeRank, so cross-type comparisons agree with Compare.
const (
	ordTagNil    = 0x00
	ordTagBool   = 0x01
	ordTagInt    = 0x02
	ordTagFloat  = 0x03
	ordTagString = 0x04
)

// AppendOrderedValue appends the order-preserving encoding of v to dst and
// returns the extended slice. It panics on unsupported dynamic types, like
// Compare.
func AppendOrderedValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, ordTagNil)
	case bool:
		if x {
			return append(dst, ordTagBool, 1)
		}
		return append(dst, ordTagBool, 0)
	case int:
		return appendOrderedInt(dst, int64(x), false)
	case int64:
		return appendOrderedInt(dst, x, false)
	case uint64:
		i, overflow := asInt(x)
		return appendOrderedInt(dst, i, overflow)
	case float64:
		bits := math.Float64bits(x)
		if x == 0 {
			// Normalize -0.0: Compare treats it equal to +0.0.
			bits = math.Float64bits(0)
		}
		if bits>>63 != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		return binary.BigEndian.AppendUint64(append(dst, ordTagFloat), bits)
	case string:
		dst = append(dst, ordTagString)
		for i := 0; i < len(x); i++ {
			c := x[i]
			if c == 0x00 {
				// Escape NUL so embedded zero bytes stay above the
				// terminator in the byte order.
				dst = append(dst, 0x00, 0xff)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, 0x00, 0x01)
	default:
		panic("rel: unsupported value type in ordered encoding")
	}
}

// appendOrderedInt encodes the normalized 65-bit integer line: a flag byte
// separating the uint64 overflow range (values above MaxInt64, which
// Compare orders after every int64) from the sign-flipped int64 range.
func appendOrderedInt(dst []byte, x int64, overflow bool) []byte {
	flag := byte(0)
	if overflow {
		flag = 1
	}
	return binary.BigEndian.AppendUint64(append(dst, ordTagInt, flag), uint64(x)^(1<<63))
}

// AppendOrderedKey appends the ordered encodings of every key value, so
// byte comparison of two equal-arity keys matches CompareKeys.
func AppendOrderedKey(dst []byte, k Key) []byte {
	for _, v := range k.vals {
		dst = AppendOrderedValue(dst, v)
	}
	return dst
}
