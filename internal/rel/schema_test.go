package rel

import (
	"testing"
)

func TestSchemaIndexing(t *testing.T) {
	s, err := NewSchema([]string{"weight", "src", "dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup)", s.Len())
	}
	want := []string{"dst", "src", "weight"}
	for i, c := range want {
		if s.Column(i) != c {
			t.Fatalf("Column(%d) = %q, want %q", i, s.Column(i), c)
		}
		if idx, ok := s.IndexOf(c); !ok || idx != i {
			t.Fatalf("IndexOf(%q) = %d,%v", c, idx, ok)
		}
	}
	if _, ok := s.IndexOf("nope"); ok {
		t.Fatal("IndexOf accepted unknown column")
	}
	if got := s.Indices([]string{"weight", "dst"}); got[0] != 2 || got[1] != 0 {
		t.Fatalf("Indices order not preserved: %v", got)
	}
	if m := s.Mask([]string{"dst", "weight"}); m != 0b101 {
		t.Fatalf("Mask = %b", m)
	}
	if m := s.FullMask(); m != 0b111 {
		t.Fatalf("FullMask = %b", m)
	}
}

func TestSchemaLimits(t *testing.T) {
	cols := make([]string, MaxSchemaColumns+1)
	for i := range cols {
		cols[i] = string(rune('a')) + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if _, err := NewSchema(cols); err == nil {
		t.Fatal("schema over the column limit accepted")
	}
	if _, err := NewSchema([]string{"a", ""}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestRowTupleRoundTrip(t *testing.T) {
	s := MustSchema([]string{"dst", "src", "weight"})
	tu := T("src", 1, "weight", "heavy")
	row, err := s.RowFromTuple(tu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Mask() != 0b110 {
		t.Fatalf("mask = %b", row.Mask())
	}
	if v, ok := row.Get(s.MustIndex("src")); !ok || v != 1 {
		t.Fatalf("src = %v,%v", v, ok)
	}
	if _, ok := row.Get(s.MustIndex("dst")); ok {
		t.Fatal("dst should be unbound")
	}
	back := s.TupleOfRow(row)
	if !back.Equal(tu) {
		t.Fatalf("round trip %v != %v", back, tu)
	}
	if _, err := s.RowFromTuple(T("other", 1), nil); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestRowHashMatchesKeyHash(t *testing.T) {
	s := MustSchema([]string{"dst", "src", "weight"})
	tu := T("src", 42, "dst", int64(7), "weight", 3.5)
	row, err := s.RowFromTuple(tu, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stripe selection hashes rows through HashAt; it must agree with the
	// tuple-path Key.Hash for the same column order.
	for _, cols := range [][]string{{"src"}, {"dst", "src"}, {"weight", "dst"}} {
		if got, want := row.HashAt(s.Indices(cols)), tu.Key(cols).Hash(); got != want {
			t.Fatalf("HashAt(%v) = %d, Key.Hash = %d", cols, got, want)
		}
	}
}

func TestRowKeyGather(t *testing.T) {
	s := MustSchema([]string{"dst", "src", "weight"})
	row := s.NewRow()
	row.Set(s.MustIndex("src"), 1)
	row.Set(s.MustIndex("dst"), 2)
	row.Set(s.MustIndex("weight"), 9)
	k := row.KeyAt(s.Indices([]string{"src", "dst"}))
	if k.Len() != 2 || k.At(0) != 1 || k.At(1) != 2 {
		t.Fatalf("KeyAt = %v", k)
	}
	buf := row.AppendKeyAt(s.Indices([]string{"weight"}), nil)
	if len(buf) != 1 || buf[0] != 9 {
		t.Fatalf("AppendKeyAt = %v", buf)
	}
	var cp Row
	cp = s.NewRow()
	cp.CopyFrom(row)
	cp.Set(s.MustIndex("src"), 100)
	if row.At(s.MustIndex("src")) != 1 {
		t.Fatal("CopyFrom aliased the source row")
	}
}
