package rel

import "testing"

func graphSpec(t *testing.T) Spec {
	t.Helper()
	s, err := NewSpec([]string{"src", "dst", "weight"}, FD{From: []string{"src", "dst"}, To: []string{"weight"}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	if _, err := NewSpec(nil); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := NewSpec([]string{"a", "a"}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSpec([]string{""}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSpec([]string{"a"}, FD{From: []string{"b"}, To: []string{"a"}}); err == nil {
		t.Error("undeclared FD column should fail")
	}
	if _, err := NewSpec([]string{"a"}, FD{To: []string{"a"}}); err == nil {
		t.Error("empty FD LHS should fail")
	}
}

func TestClosure(t *testing.T) {
	s := graphSpec(t)
	cl := s.Closure([]string{"src", "dst"})
	if !ColsEqual(cl, []string{"dst", "src", "weight"}) {
		t.Fatalf("closure = %v", cl)
	}
	cl2 := s.Closure([]string{"src"})
	if !ColsEqual(cl2, []string{"src"}) {
		t.Fatalf("closure(src) = %v", cl2)
	}
}

func TestClosureChained(t *testing.T) {
	s := MustSpec([]string{"a", "b", "c", "d"},
		FD{From: []string{"a"}, To: []string{"b"}},
		FD{From: []string{"b"}, To: []string{"c"}},
		FD{From: []string{"c"}, To: []string{"d"}})
	if !ColsEqual(s.Closure([]string{"a"}), []string{"a", "b", "c", "d"}) {
		t.Fatal("transitive closure broken")
	}
	if !s.IsKey([]string{"a"}) {
		t.Fatal("a should be a key")
	}
	if s.IsKey([]string{"b"}) && s.Determines([]string{"b"}, []string{"a"}) {
		t.Fatal("b should not determine a")
	}
}

func TestIsKeyGraph(t *testing.T) {
	s := graphSpec(t)
	if !s.IsKey([]string{"src", "dst"}) {
		t.Error("src,dst should be a key")
	}
	if s.IsKey([]string{"src"}) {
		t.Error("src alone should not be a key")
	}
	if !s.Determines([]string{"src", "dst"}, []string{"weight"}) {
		t.Error("src,dst should determine weight")
	}
}

func TestColsHelpers(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"y", "z"}
	if !ColsEqual(ColsUnion(a, b), []string{"x", "y", "z"}) {
		t.Error("union broken")
	}
	if !ColsEqual(ColsMinus(a, b), []string{"x"}) {
		t.Error("minus broken")
	}
	if !ColsEqual(ColsIntersect(a, b), []string{"y"}) {
		t.Error("intersect broken")
	}
	if !ColsSubset([]string{"x"}, a) || ColsSubset(a, []string{"x"}) {
		t.Error("subset broken")
	}
	if !ColsEqual(nil, nil) || ColsEqual(a, b) {
		t.Error("equal broken")
	}
}

func TestSpecString(t *testing.T) {
	s := graphSpec(t)
	want := "{dst, src, weight | src, dst → weight}"
	if s.String() != want {
		t.Fatalf("String = %s, want %s", s.String(), want)
	}
}

func TestHasColumn(t *testing.T) {
	s := graphSpec(t)
	if !s.HasColumn("src") || s.HasColumn("nope") {
		t.Fatal("HasColumn broken")
	}
}
