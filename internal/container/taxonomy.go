package container

import (
	"fmt"
	"strings"
)

// FormatTaxonomy renders the Figure 1 table: the concurrency-safety and
// consistency properties of every container kind, for the operation pairs
// lookup/lookup, lookup/write, scan/write, write/write and lookup/scan,
// scan/scan.
func FormatTaxonomy() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-5s %-5s %-5s %-5s %-6s %-7s %-9s\n",
		"Data Structure", "L/L", "L/W", "S/W", "W/W", "L/S,S/S", "sorted", "snapshot")
	for _, k := range Kinds() {
		p := PropertiesOf(k)
		ls := p.LS.String()
		if p.LS != p.SS {
			ls = p.LS.String() + "/" + p.SS.String()
		}
		fmt.Fprintf(&b, "%-22s %-5s %-5s %-5s %-5s %-6s %-7v %-9v\n",
			k.String(), p.LL, p.LW, p.SW, p.WW, ls, p.SortedScan, p.SnapshotScan)
	}
	return b.String()
}
