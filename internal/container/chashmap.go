package container

import (
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// concurrentHashMap is a segment-striped hash table, the analog of
// java.util.concurrent.ConcurrentHashMap: each key hashes to one of a fixed
// number of independently locked segments, so lookups and writes to
// different segments never contend and operations on the same key are
// linearizable. Iteration visits one segment at a time and is therefore
// only weakly consistent (§3.1): it may or may not observe writes that run
// in parallel with the scan.
type concurrentHashMap struct {
	segments [chmSegments]chmSegment
	size     atomic.Int64
}

const chmSegments = 16

type chmSegment struct {
	mu      sync.RWMutex
	buckets []*hentry
	count   int
}

// NewConcurrentHashMap returns an empty concurrency-safe hash map.
func NewConcurrentHashMap() Map {
	m := &concurrentHashMap{}
	for i := range m.segments {
		m.segments[i].buckets = make([]*hentry, hashMapInitialBuckets)
	}
	return m
}

func (m *concurrentHashMap) segmentFor(h uint64) *chmSegment {
	// Use high bits for the segment so the low bits remain useful for the
	// per-segment bucket index.
	return &m.segments[(h>>59)&(chmSegments-1)]
}

// Lookup returns the value for k; linearizable with concurrent writes.
func (m *concurrentHashMap) Lookup(k rel.Key) (any, bool) {
	h := k.Hash()
	s := m.segmentFor(h)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for e := s.buckets[int(h&uint64(len(s.buckets)-1))]; e != nil; e = e.next {
		if e.hash == h && e.key.Equal(k) {
			return e.val, true
		}
	}
	return nil, false
}

// Write inserts, updates, or (v == nil) removes the entry for k;
// linearizable with concurrent lookups and writes.
func (m *concurrentHashMap) Write(k rel.Key, v any) {
	h := k.Hash()
	s := m.segmentFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := int(h & uint64(len(s.buckets)-1))
	if v == nil {
		for p, e := (**hentry)(&s.buckets[b]), s.buckets[b]; e != nil; p, e = &e.next, e.next {
			if e.hash == h && e.key.Equal(k) {
				*p = e.next
				s.count--
				m.size.Add(-1)
				return
			}
		}
		return
	}
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.hash == h && e.key.Equal(k) {
			e.val = v
			return
		}
	}
	s.buckets[b] = &hentry{key: k, hash: h, val: v, next: s.buckets[b]}
	s.count++
	m.size.Add(1)
	if s.count > len(s.buckets) {
		s.grow()
	}
}

func (s *chmSegment) grow() {
	old := s.buckets
	s.buckets = make([]*hentry, 2*len(old))
	// Readers hold the segment read lock, so relinking in place is safe.
	for _, e := range old {
		for e != nil {
			next := e.next
			b := int(e.hash & uint64(len(s.buckets)-1))
			e.next = s.buckets[b]
			s.buckets[b] = e
			e = next
		}
	}
}

// Scan iterates segment by segment under the segment read lock; the
// iteration is weakly consistent: writes racing with the scan in segments
// not yet visited are observed, earlier ones are not.
func (m *concurrentHashMap) Scan(f func(k rel.Key, v any) bool) {
	for i := range m.segments {
		s := &m.segments[i]
		s.mu.RLock()
		// Snapshot the segment's key/value pairs so f runs without holding
		// the segment lock (f may call back into other containers), and so
		// no entry field is read outside the lock.
		entries := make([]cowEntry, 0, s.count)
		for _, e := range s.buckets {
			for ; e != nil; e = e.next {
				entries = append(entries, cowEntry{key: e.key, val: e.val})
			}
		}
		s.mu.RUnlock()
		for _, e := range entries {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// Len returns the entry count; exact only in quiescent states.
func (m *concurrentHashMap) Len() int { return int(m.size.Load()) }
