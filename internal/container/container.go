// Package container implements the container taxonomy of §3 of
// "Concurrent Data Representation Synthesis" (PLDI 2012): an associative
// key→value map interface with lookup / scan / write operations, a registry
// of concurrency-safety and consistency properties per container kind
// (the paper's Figure 1), and from-scratch Go implementations of the five
// container families the paper draws from the JDK, plus the singleton Cell
// used for "dotted" decomposition edges.
//
// Concurrency safety here is a statement about the *interface contract*
// (§3.1): whether two operations may run in parallel with no external
// synchronization. The synthesizer (internal/locks, internal/autotune)
// consults PropertiesOf to decide which lock placements make a container
// choice legal.
package container

import (
	"fmt"

	"repro/internal/rel"
)

// Map is the container interface of §3: an associative map from keys to
// values with read operations Lookup and Scan and a write operation Write.
//
// Write(k, v) with a non-nil v inserts or updates; Write(k, nil) removes
// any entry for k — this is the paper's ML-style optional-value write.
// Stored values must be non-nil.
type Map interface {
	// Lookup returns the value associated with key k, if any.
	Lookup(k rel.Key) (any, bool)
	// Scan invokes f once per entry until f returns false or entries are
	// exhausted. Whether iteration is sorted, snapshot or weakly
	// consistent is a per-kind property; see PropertiesOf.
	Scan(f func(k rel.Key, v any) bool)
	// Write sets the value for k (v != nil) or removes the entry (v == nil).
	Write(k rel.Key, v any)
	// Len returns the number of entries. For concurrent containers the
	// value is a linearizable count only in quiescent states.
	Len() int
}

// Kind identifies a container implementation.
type Kind int

// The container kinds, named after their JDK archetypes (Figure 1).
const (
	// HashMap is a non-concurrent chained hash table.
	HashMap Kind = iota
	// TreeMap is a non-concurrent left-leaning red-black tree with sorted
	// iteration.
	TreeMap
	// ConcurrentHashMap is a segment-striped hash table with linearizable
	// lookup/write and weakly consistent iteration.
	ConcurrentHashMap
	// ConcurrentSkipListMap is a lazy concurrent skip list (the paper's
	// reference [14]) with linearizable lookup/write, sorted but weakly
	// consistent iteration.
	ConcurrentSkipListMap
	// CopyOnWriteMap is a copy-on-write sorted array map with snapshot
	// (linearizable) iteration; writes are O(n).
	CopyOnWriteMap
	// Cell is the singleton-tuple container used for the dotted edges of
	// Figures 2 and 3: it holds at most one entry.
	Cell

	numKinds = iota
)

// String returns the JDK-style container name.
func (k Kind) String() string {
	switch k {
	case HashMap:
		return "HashMap"
	case TreeMap:
		return "TreeMap"
	case ConcurrentHashMap:
		return "ConcurrentHashMap"
	case ConcurrentSkipListMap:
		return "ConcurrentSkipListMap"
	case CopyOnWriteMap:
		return "CopyOnWriteMap"
	case Cell:
		return "Cell"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every container kind, in Figure 1 order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Safety classifies a pair of operations α/β on a container (§3.1):
// executing α and β in parallel from two threads with no external
// synchronization is either unsafe, safe but only weakly consistent, or
// both safe and linearizable.
type Safety int

const (
	// Unsafe: concurrent execution may corrupt the container or crash.
	Unsafe Safety = iota
	// Weak: concurrent execution is safe but the observed result may not
	// be linearizable (e.g. weakly consistent iterators).
	Weak
	// Linearizable: concurrent execution is safe and linearizable.
	Linearizable
)

// String renders the safety level in Figure 1's vocabulary.
func (s Safety) String() string {
	switch s {
	case Unsafe:
		return "no"
	case Weak:
		return "weak"
	case Linearizable:
		return "yes"
	default:
		return fmt.Sprintf("Safety(%d)", int(s))
	}
}

// Properties records the Figure 1 row for a container kind: the
// concurrency safety of each operation pair (lookup L, scan S, write W)
// plus the consistency flavor of iteration.
type Properties struct {
	Kind Kind
	// Operation-pair safety, Figure 1 columns.
	LL, LW, SW, WW, LS, SS Safety
	// SortedScan reports whether Scan yields entries in key order.
	SortedScan bool
	// SnapshotScan reports whether Scan behaves as if over a linearizable
	// snapshot (§3.1); false for weakly consistent iteration.
	SnapshotScan bool
}

// ConcurrencySafe reports whether every operation pair is at least Weak —
// the container may be accessed concurrently with no external locks
// (§3.1's "concurrency-safe container"). This is the property lock
// striping requires (§4.4).
func (p Properties) ConcurrencySafe() bool {
	for _, s := range []Safety{p.LL, p.LW, p.SW, p.WW, p.LS, p.SS} {
		if s == Unsafe {
			return false
		}
	}
	return true
}

// WriteWriteSafe reports whether two writes may proceed in parallel.
func (p Properties) WriteWriteSafe() bool { return p.WW != Unsafe }

// LinearizableReads reports whether lookup is linearizable with concurrent
// writes — the precondition for speculative lock placement (§4.5), which
// performs unlocked reads to guess the lock to take.
func (p Properties) LinearizableReads() bool { return p.LW == Linearizable }

var properties = [numKinds]Properties{
	HashMap: {
		Kind: HashMap,
		LL:   Linearizable, LW: Unsafe, SW: Unsafe, WW: Unsafe,
		LS: Linearizable, SS: Linearizable,
		SortedScan: false, SnapshotScan: false,
	},
	TreeMap: {
		Kind: TreeMap,
		LL:   Linearizable, LW: Unsafe, SW: Unsafe, WW: Unsafe,
		LS: Linearizable, SS: Linearizable,
		SortedScan: true, SnapshotScan: false,
	},
	ConcurrentHashMap: {
		Kind: ConcurrentHashMap,
		LL:   Linearizable, LW: Linearizable, SW: Weak, WW: Linearizable,
		LS: Weak, SS: Weak,
		SortedScan: false, SnapshotScan: false,
	},
	ConcurrentSkipListMap: {
		Kind: ConcurrentSkipListMap,
		LL:   Linearizable, LW: Linearizable, SW: Weak, WW: Linearizable,
		LS: Weak, SS: Weak,
		SortedScan: true, SnapshotScan: false,
	},
	CopyOnWriteMap: {
		Kind: CopyOnWriteMap,
		LL:   Linearizable, LW: Linearizable, SW: Linearizable, WW: Linearizable,
		LS: Linearizable, SS: Linearizable,
		SortedScan: true, SnapshotScan: true,
	},
	Cell: {
		Kind: Cell,
		LL:   Linearizable, LW: Linearizable, SW: Linearizable, WW: Linearizable,
		LS: Linearizable, SS: Linearizable,
		SortedScan: true, SnapshotScan: true,
	},
}

// PropertiesOf returns the Figure 1 row for a container kind.
func PropertiesOf(k Kind) Properties {
	if k < 0 || int(k) >= numKinds {
		panic(fmt.Sprintf("container: unknown kind %d", int(k)))
	}
	return properties[k]
}

// New constructs an empty container of the given kind.
func New(k Kind) Map {
	switch k {
	case HashMap:
		return NewHashMap()
	case TreeMap:
		return NewTreeMap()
	case ConcurrentHashMap:
		return NewConcurrentHashMap()
	case ConcurrentSkipListMap:
		return NewConcurrentSkipListMap()
	case CopyOnWriteMap:
		return NewCopyOnWriteMap()
	case Cell:
		return NewCell()
	default:
		panic(fmt.Sprintf("container: unknown kind %d", int(k)))
	}
}
