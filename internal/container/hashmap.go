package container

import "repro/internal/rel"

// hashMap is a from-scratch chained hash table, the analog of
// java.util.HashMap: safe for parallel lookups and scans, unsafe under any
// concurrent write. Buckets double when the load factor exceeds 1.
type hashMap struct {
	buckets []*hentry
	size    int
}

type hentry struct {
	key  rel.Key
	hash uint64
	val  any
	next *hentry
}

const hashMapInitialBuckets = 8

// NewHashMap returns an empty non-concurrent chained hash map.
func NewHashMap() Map {
	return &hashMap{buckets: make([]*hentry, hashMapInitialBuckets)}
}

func (m *hashMap) bucketFor(h uint64) int {
	return int(h & uint64(len(m.buckets)-1))
}

// Lookup returns the value associated with k, if present.
func (m *hashMap) Lookup(k rel.Key) (any, bool) {
	h := k.Hash()
	for e := m.buckets[m.bucketFor(h)]; e != nil; e = e.next {
		if e.hash == h && e.key.Equal(k) {
			return e.val, true
		}
	}
	return nil, false
}

// Write inserts, updates, or (v == nil) removes the entry for k.
func (m *hashMap) Write(k rel.Key, v any) {
	h := k.Hash()
	b := m.bucketFor(h)
	if v == nil {
		for p, e := (**hentry)(&m.buckets[b]), m.buckets[b]; e != nil; p, e = &e.next, e.next {
			if e.hash == h && e.key.Equal(k) {
				*p = e.next
				m.size--
				return
			}
		}
		return
	}
	for e := m.buckets[b]; e != nil; e = e.next {
		if e.hash == h && e.key.Equal(k) {
			e.val = v
			return
		}
	}
	m.buckets[b] = &hentry{key: k, hash: h, val: v, next: m.buckets[b]}
	m.size++
	if m.size > len(m.buckets) {
		m.grow()
	}
}

func (m *hashMap) grow() {
	old := m.buckets
	m.buckets = make([]*hentry, 2*len(old))
	for _, e := range old {
		for e != nil {
			next := e.next
			b := m.bucketFor(e.hash)
			e.next = m.buckets[b]
			m.buckets[b] = e
			e = next
		}
	}
}

// Scan iterates over the entries in bucket order (unsorted).
func (m *hashMap) Scan(f func(k rel.Key, v any) bool) {
	for _, e := range m.buckets {
		for ; e != nil; e = e.next {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// Len returns the number of entries.
func (m *hashMap) Len() int { return m.size }
