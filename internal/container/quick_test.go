package container

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

// opSeq is a random operation sequence for testing/quick: each element
// encodes (key, action) where action 0..5 = write, 6..7 = delete,
// 8..9 = lookup-check.
type opSeq []uint16

// Generate implements quick.Generator with moderate lengths and a small
// key range so deletes actually hit.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(200) + 20
	s := make(opSeq, n)
	for i := range s {
		s[i] = uint16(r.Intn(1 << 16))
	}
	return reflect.ValueOf(s)
}

// TestQuickContainersRefineModel drives every container kind with random
// operation sequences and checks it refines the model map at every step.
func TestQuickContainersRefineModel(t *testing.T) {
	for _, kind := range mapKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(ops opSeq) bool {
				m := New(kind)
				model := map[int]int{}
				for i, op := range ops {
					key := int(op % 64)
					action := int(op>>8) % 10
					k := rel.NewKey(key)
					switch {
					case action < 6:
						m.Write(k, i)
						model[key] = i
					case action < 8:
						m.Write(k, nil)
						delete(model, key)
					default:
						got, ok := m.Lookup(k)
						want, wok := model[key]
						if ok != wok || (ok && got != want) {
							return false
						}
					}
					if m.Len() != len(model) {
						return false
					}
				}
				// Final scan equivalence.
				seen := 0
				good := true
				m.Scan(func(k rel.Key, v any) bool {
					key := k.At(0).(int)
					want, ok := model[key]
					if !ok || v != want {
						good = false
						return false
					}
					seen++
					return true
				})
				return good && seen == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSortedScansAscend checks the sorted-scan property under random
// workloads for the ordered kinds.
func TestQuickSortedScansAscend(t *testing.T) {
	for _, kind := range []Kind{TreeMap, ConcurrentSkipListMap, CopyOnWriteMap} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(ops opSeq) bool {
				m := New(kind)
				for i, op := range ops {
					k := rel.NewKey(int(op % 512))
					if op>>9%3 == 0 {
						m.Write(k, nil)
					} else {
						m.Write(k, i)
					}
				}
				prev := -1
				ok := true
				m.Scan(func(k rel.Key, v any) bool {
					cur := k.At(0).(int)
					if cur <= prev {
						ok = false
						return false
					}
					prev = cur
					return true
				})
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
