package container

import (
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// concurrentSkipList is a lazy concurrent skip list in the style of
// Herlihy, Lev, Luchangco and Shavit ("A provably correct scalable
// concurrent skip list", OPODIS 2006 — the paper's reference [14], also the
// source of the benchmarking methodology of §6.2). It is the analog of
// java.util.concurrent.ConcurrentSkipListMap.
//
//   - Lookup is wait-free: it never acquires locks and is linearizable.
//   - Write locks only the predecessor nodes of the affected key and
//     validates before linking/unlinking; concurrent writes to different
//     keys proceed in parallel.
//   - Scan walks level 0, skipping nodes that are marked (logically
//     deleted) or not yet fully linked; it is sorted but only weakly
//     consistent (§3.1).
type concurrentSkipList struct {
	head *slNode
	tail *slNode
	size atomic.Int64
}

const slMaxLevel = 24

type slNode struct {
	key rel.Key
	// sentinel is -1 for head (−∞), +1 for tail (+∞), 0 for ordinary nodes.
	sentinel int
	val      atomic.Pointer[slBox]
	next     [slMaxLevel]atomic.Pointer[slNode]
	mu       sync.Mutex
	marked   atomic.Bool
	linked   atomic.Bool // fullyLinked
	topLevel int         // highest level this node participates in (0-based)
}

// slBox wraps a stored value so updates can be published atomically.
type slBox struct{ v any }

// NewConcurrentSkipListMap returns an empty concurrency-safe sorted map.
func NewConcurrentSkipListMap() Map {
	m := &concurrentSkipList{
		head: &slNode{sentinel: -1, topLevel: slMaxLevel - 1},
		tail: &slNode{sentinel: 1, topLevel: slMaxLevel - 1},
	}
	m.head.linked.Store(true)
	m.tail.linked.Store(true)
	for i := 0; i < slMaxLevel; i++ {
		m.head.next[i].Store(m.tail)
	}
	return m
}

// compareToKey orders a node against a key, honoring the ±∞ sentinels.
func (n *slNode) compareToKey(k rel.Key) int {
	if n.sentinel != 0 {
		return n.sentinel
	}
	return rel.CompareKeys(n.key, k)
}

// randomLevel draws a geometric level with p = 1/4, capped at slMaxLevel.
func randomLevel() int {
	lvl := bits.TrailingZeros64(rand.Uint64()) / 2
	if lvl >= slMaxLevel {
		lvl = slMaxLevel - 1
	}
	return lvl
}

// find locates the predecessors and successors of k at every level and
// returns the highest level at which a node with key k was found, or -1.
func (m *concurrentSkipList) find(k rel.Key, preds, succs *[slMaxLevel]*slNode) int {
	found := -1
	pred := m.head
	for level := slMaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.compareToKey(k) < 0 {
			pred = curr
			curr = pred.next[level].Load()
		}
		if found == -1 && curr.compareToKey(k) == 0 {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// Lookup returns the value for k. It is wait-free and linearizable: a node
// counts as present exactly when it is fully linked and not marked.
func (m *concurrentSkipList) Lookup(k rel.Key) (any, bool) {
	pred := m.head
	var curr *slNode
	for level := slMaxLevel - 1; level >= 0; level-- {
		curr = pred.next[level].Load()
		for curr.compareToKey(k) < 0 {
			pred = curr
			curr = pred.next[level].Load()
		}
		if curr.compareToKey(k) == 0 {
			if curr.linked.Load() && !curr.marked.Load() {
				if b := curr.val.Load(); b != nil {
					return b.v, true
				}
			}
			return nil, false
		}
	}
	return nil, false
}

// Write inserts, updates, or (v == nil) removes the entry for k.
func (m *concurrentSkipList) Write(k rel.Key, v any) {
	if v == nil {
		m.remove(k)
		return
	}
	m.insert(k, v)
}

func (m *concurrentSkipList) insert(k rel.Key, v any) {
	topLevel := randomLevel()
	var preds, succs [slMaxLevel]*slNode
	for {
		found := m.find(k, &preds, &succs)
		if found != -1 {
			node := succs[found]
			if !node.marked.Load() {
				// Key already present (or being inserted): wait for the
				// insertion to complete, then update the value in place.
				for !node.linked.Load() {
				}
				node.mu.Lock()
				if !node.marked.Load() {
					node.val.Store(&slBox{v: v})
					node.mu.Unlock()
					return
				}
				node.mu.Unlock()
			}
			// Node is being removed; retry until it is unlinked.
			continue
		}

		// Lock all distinct predecessors bottom-up and validate.
		var highestLocked = -1
		var prevPred *slNode
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			succ := succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[level].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		node := &slNode{key: k, topLevel: topLevel}
		node.val.Store(&slBox{v: v})
		for level := 0; level <= topLevel; level++ {
			node.next[level].Store(succs[level])
		}
		for level := 0; level <= topLevel; level++ {
			preds[level].next[level].Store(node)
		}
		node.linked.Store(true)
		unlockPreds(&preds, highestLocked)
		m.size.Add(1)
		return
	}
}

func unlockPreds(preds *[slMaxLevel]*slNode, highestLocked int) {
	var prev *slNode
	for level := 0; level <= highestLocked; level++ {
		if preds[level] != prev {
			preds[level].mu.Unlock()
			prev = preds[level]
		}
	}
}

func (m *concurrentSkipList) remove(k rel.Key) {
	var preds, succs [slMaxLevel]*slNode
	var victim *slNode
	isMarked := false
	topLevel := -1
	for {
		found := m.find(k, &preds, &succs)
		if found != -1 {
			victim = succs[found]
		}
		if !isMarked {
			if found == -1 ||
				!victim.linked.Load() ||
				victim.topLevel != found ||
				victim.marked.Load() {
				return // absent, or another remover got it first
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return
			}
			victim.marked.Store(true)
			isMarked = true
		}

		// Lock distinct predecessors and validate.
		highestLocked := -1
		var prevPred *slNode
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		m.size.Add(-1)
		return
	}
}

// Scan walks level 0 in key order, skipping logically deleted or
// incompletely inserted nodes. Weakly consistent: concurrent writes may or
// may not be observed.
func (m *concurrentSkipList) Scan(f func(k rel.Key, v any) bool) {
	curr := m.head.next[0].Load()
	for curr.sentinel == 0 {
		if curr.linked.Load() && !curr.marked.Load() {
			if b := curr.val.Load(); b != nil {
				if !f(curr.key, b.v) {
					return
				}
			}
		}
		curr = curr.next[0].Load()
	}
}

// Len returns the entry count; exact only in quiescent states.
func (m *concurrentSkipList) Len() int { return int(m.size.Load()) }
