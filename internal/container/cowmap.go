package container

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// cowMap is a copy-on-write sorted array map, the analog of
// java.util.concurrent.CopyOnWriteArrayList used as an associative
// container: every mutation copies the backing array under a mutex and
// publishes it atomically, so reads and scans operate on immutable
// snapshots. All operation pairs are safe and linearizable, and iteration
// is snapshot iteration (§3.1) — at the cost of O(n) writes.
type cowMap struct {
	mu   sync.Mutex
	data atomic.Pointer[[]cowEntry]
}

type cowEntry struct {
	key rel.Key
	val any
}

// NewCopyOnWriteMap returns an empty snapshot-iteration map.
func NewCopyOnWriteMap() Map {
	m := &cowMap{}
	empty := make([]cowEntry, 0)
	m.data.Store(&empty)
	return m
}

func cowSearch(data []cowEntry, k rel.Key) (int, bool) {
	i := sort.Search(len(data), func(i int) bool {
		return rel.CompareKeys(data[i].key, k) >= 0
	})
	return i, i < len(data) && data[i].key.Equal(k)
}

// Lookup returns the value for k from the current snapshot.
func (m *cowMap) Lookup(k rel.Key) (any, bool) {
	data := *m.data.Load()
	if i, ok := cowSearch(data, k); ok {
		return data[i].val, true
	}
	return nil, false
}

// Write inserts, updates, or (v == nil) removes the entry for k by
// publishing a fresh copy of the array.
func (m *cowMap) Write(k rel.Key, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data := *m.data.Load()
	i, found := cowSearch(data, k)
	switch {
	case v == nil && !found:
		return
	case v == nil:
		next := make([]cowEntry, 0, len(data)-1)
		next = append(next, data[:i]...)
		next = append(next, data[i+1:]...)
		m.data.Store(&next)
	case found:
		next := make([]cowEntry, len(data))
		copy(next, data)
		next[i].val = v
		m.data.Store(&next)
	default:
		next := make([]cowEntry, 0, len(data)+1)
		next = append(next, data[:i]...)
		next = append(next, cowEntry{key: k, val: v})
		next = append(next, data[i:]...)
		m.data.Store(&next)
	}
}

// Scan iterates a snapshot in ascending key order; snapshot iteration is
// linearizable (§3.1).
func (m *cowMap) Scan(f func(k rel.Key, v any) bool) {
	for _, e := range *m.data.Load() {
		if !f(e.key, e.val) {
			return
		}
	}
}

// Len returns the entry count of the current snapshot.
func (m *cowMap) Len() int { return len(*m.data.Load()) }
