package container

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rel"
)

// concurrentKinds are the containers whose taxonomy rows claim full
// concurrency safety; the stress tests below exercise exactly the pairs
// Figure 1 marks safe, and running under -race validates the claims.
var concurrentKinds = []Kind{ConcurrentHashMap, ConcurrentSkipListMap, CopyOnWriteMap, Cell}

func TestStressConcurrentWriters(t *testing.T) {
	for _, kind := range concurrentKinds {
		if kind == Cell {
			continue // singleton: exercised separately
		}
		t.Run(kind.String(), func(t *testing.T) {
			m := New(kind)
			const workers = 8
			const perWorker = 400
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Disjoint key ranges: all inserts must survive.
					for i := 0; i < perWorker; i++ {
						m.Write(rel.NewKey(w*perWorker+i), w)
					}
				}(w)
			}
			wg.Wait()
			if m.Len() != workers*perWorker {
				t.Fatalf("Len = %d, want %d", m.Len(), workers*perWorker)
			}
			for w := 0; w < workers; w++ {
				for i := 0; i < perWorker; i++ {
					if v, ok := m.Lookup(rel.NewKey(w*perWorker + i)); !ok || v != w {
						t.Fatalf("lost write %d/%d: %v, %v", w, i, v, ok)
					}
				}
			}
		})
	}
}

func TestStressMixedOps(t *testing.T) {
	for _, kind := range concurrentKinds {
		if kind == Cell {
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			m := New(kind)
			const workers = 8
			var wg sync.WaitGroup
			var stop atomic.Bool
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for i := 0; i < 3000; i++ {
						k := rel.NewKey(r.Intn(128))
						switch r.Intn(4) {
						case 0:
							m.Write(k, i)
						case 1:
							m.Write(k, nil)
						case 2:
							m.Lookup(k)
						default:
							n := 0
							m.Scan(func(rel.Key, any) bool { n++; return n < 50 })
						}
					}
				}(int64(w))
			}
			wg.Wait()
			stop.Store(true)
			// Post-quiescence sanity: Len agrees with a full scan.
			n := 0
			m.Scan(func(rel.Key, any) bool { n++; return true })
			if n != m.Len() {
				t.Fatalf("quiescent scan count %d != Len %d", n, m.Len())
			}
		})
	}
}

func TestStressSameKeyContention(t *testing.T) {
	// Hammer a handful of keys from many goroutines; afterwards every
	// surviving key must map to one of the written values.
	for _, kind := range []Kind{ConcurrentHashMap, ConcurrentSkipListMap} {
		t.Run(kind.String(), func(t *testing.T) {
			m := New(kind)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 4000; i++ {
						k := rel.NewKey(r.Intn(4))
						if r.Intn(2) == 0 {
							m.Write(k, w*10000+i)
						} else {
							m.Write(k, nil)
						}
					}
				}(w)
			}
			wg.Wait()
			for i := 0; i < 4; i++ {
				if v, ok := m.Lookup(rel.NewKey(i)); ok {
					if v.(int) < 0 || v.(int) >= workers*10000+4000 {
						t.Fatalf("impossible surviving value %v", v)
					}
				}
			}
			if m.Len() < 0 || m.Len() > 4 {
				t.Fatalf("Len = %d out of range", m.Len())
			}
		})
	}
}

func TestSkipListRemoveInsertRace(t *testing.T) {
	// One goroutine repeatedly inserts key K, another repeatedly removes
	// it, while readers look it up: a targeted probe of the lazy
	// skip list's mark/fully-linked protocol.
	m := New(ConcurrentSkipListMap)
	k := rel.NewKey("contended")
	var wg sync.WaitGroup
	const rounds = 5000
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.Write(k, i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.Write(k, nil)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if v, ok := m.Lookup(k); ok {
				if _, isInt := v.(int); !isInt {
					t.Errorf("lookup observed torn value %v", v)
					return
				}
			}
		}
	}()
	wg.Wait()
	// Quiescent state must be coherent.
	if _, ok := m.Lookup(k); ok != (m.Len() == 1) {
		t.Fatalf("quiescent mismatch: present=%v Len=%d", ok, m.Len())
	}
}

func TestSkipListSortedUnderConcurrency(t *testing.T) {
	m := New(ConcurrentSkipListMap)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := rel.NewKey(r.Intn(1000))
				if r.Intn(3) == 0 {
					m.Write(k, nil)
				} else {
					m.Write(k, i)
				}
				if i%100 == 0 {
					// Scans concurrent with writes must stay sorted even if
					// weakly consistent.
					prev := -1
					m.Scan(func(k rel.Key, v any) bool {
						cur := k.At(0).(int)
						if cur <= prev {
							t.Errorf("unsorted concurrent scan: %d after %d", cur, prev)
							return false
						}
						prev = cur
						return true
					})
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCellConcurrent(t *testing.T) {
	c := New(Cell)
	k := rel.NewKey(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				switch i % 3 {
				case 0:
					c.Write(k, w)
				case 1:
					c.Write(k, nil)
				default:
					if v, ok := c.Lookup(k); ok {
						if _, isInt := v.(int); !isInt {
							t.Errorf("torn cell value %v", v)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestHashMapParallelReads(t *testing.T) {
	// Figure 1: HashMap L/L and L/S and S/S are safe. Parallel readers
	// over a quiescent HashMap must be race-free (checked by -race).
	m := New(HashMap)
	for i := 0; i < 1000; i++ {
		m.Write(rel.NewKey(i), i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if v, ok := m.Lookup(rel.NewKey(i)); !ok || v != i {
					t.Errorf("read %d failed", i)
					return
				}
			}
			n := 0
			m.Scan(func(rel.Key, any) bool { n++; return true })
			if n != 1000 {
				t.Errorf("scan saw %d", n)
			}
		}(w)
	}
	wg.Wait()
}

func TestCopyOnWriteSnapshotUnderConcurrency(t *testing.T) {
	// A scan started at time T must observe exactly the state at T even
	// while writers run: start a scan, let writers go wild, finish the
	// scan, and verify the scan saw a prefix-consistent snapshot.
	m := New(CopyOnWriteMap)
	for i := 0; i < 100; i++ {
		m.Write(rel.NewKey(i), 0)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			m.Write(rel.NewKey(100+i), i)
			m.Write(rel.NewKey(100+i), nil)
		}
	}()
	for round := 0; round < 50; round++ {
		count := 0
		firstLen := m.Len()
		_ = firstLen
		m.Scan(func(k rel.Key, v any) bool {
			count++
			return true
		})
		// Every scan sees an integral snapshot: at least the 100 base
		// keys, at most base+1 (a transiently inserted key).
		if count < 100 || count > 101 {
			t.Fatalf("snapshot scan saw %d entries", count)
		}
	}
	wg.Wait()
}
