package container

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rel"
)

// modelMap is the executable specification a container must refine: a Go
// map keyed by the unambiguous string rendering of the key.
type modelMap struct {
	entries map[string]modelEntry
}

type modelEntry struct {
	key rel.Key
	val any
}

func newModel() *modelMap { return &modelMap{entries: map[string]modelEntry{}} }

func (m *modelMap) write(k rel.Key, v any) {
	if v == nil {
		delete(m.entries, k.String())
		return
	}
	m.entries[k.String()] = modelEntry{key: k, val: v}
}

func (m *modelMap) lookup(k rel.Key) (any, bool) {
	e, ok := m.entries[k.String()]
	return e.val, ok
}

func (m *modelMap) sortedKeys() []rel.Key {
	keys := make([]rel.Key, 0, len(m.entries))
	for _, e := range m.entries {
		keys = append(keys, e.key)
	}
	sort.Slice(keys, func(i, j int) bool { return rel.CompareKeys(keys[i], keys[j]) < 0 })
	return keys
}

// mapKinds are the kinds with general map semantics (Cell is singleton-only
// and is tested separately).
var mapKinds = []Kind{HashMap, TreeMap, ConcurrentHashMap, ConcurrentSkipListMap, CopyOnWriteMap}

func forEachMapKind(t *testing.T, f func(t *testing.T, kind Kind)) {
	t.Helper()
	for _, k := range mapKinds {
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

func TestEmptyContainer(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		m := New(kind)
		if m.Len() != 0 {
			t.Fatalf("empty Len = %d", m.Len())
		}
		if _, ok := m.Lookup(rel.NewKey(1)); ok {
			t.Fatal("lookup in empty container succeeded")
		}
		count := 0
		m.Scan(func(rel.Key, any) bool { count++; return true })
		if count != 0 {
			t.Fatalf("scan of empty container yielded %d entries", count)
		}
		// Removing an absent key is a no-op.
		m.Write(rel.NewKey(1), nil)
		if m.Len() != 0 {
			t.Fatal("removing absent key changed Len")
		}
	})
}

func TestInsertLookupRemove(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		m := New(kind)
		k1, k2 := rel.NewKey(1, "a"), rel.NewKey(2, "b")
		m.Write(k1, "v1")
		m.Write(k2, "v2")
		if m.Len() != 2 {
			t.Fatalf("Len = %d, want 2", m.Len())
		}
		if v, ok := m.Lookup(k1); !ok || v != "v1" {
			t.Fatalf("Lookup(k1) = %v, %v", v, ok)
		}
		// Update in place.
		m.Write(k1, "v1b")
		if v, _ := m.Lookup(k1); v != "v1b" {
			t.Fatalf("update failed: %v", v)
		}
		if m.Len() != 2 {
			t.Fatalf("update changed Len to %d", m.Len())
		}
		// Remove.
		m.Write(k1, nil)
		if _, ok := m.Lookup(k1); ok {
			t.Fatal("removed key still present")
		}
		if v, ok := m.Lookup(k2); !ok || v != "v2" {
			t.Fatalf("unrelated key disturbed: %v, %v", v, ok)
		}
		if m.Len() != 1 {
			t.Fatalf("Len = %d, want 1", m.Len())
		}
	})
}

func TestRandomOpsAgainstModel(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		r := rand.New(rand.NewSource(42))
		m := New(kind)
		model := newModel()
		for i := 0; i < 5000; i++ {
			k := rel.NewKey(r.Intn(200))
			switch r.Intn(10) {
			case 0, 1, 2, 3: // insert/update
				v := r.Intn(1 << 30)
				m.Write(k, v)
				model.write(k, v)
			case 4, 5: // remove
				m.Write(k, nil)
				model.write(k, nil)
			default: // lookup
				got, gok := m.Lookup(k)
				want, wok := model.lookup(k)
				if gok != wok || (gok && got != want) {
					t.Fatalf("step %d: Lookup(%v) = %v,%v want %v,%v", i, k, got, gok, want, wok)
				}
			}
			if m.Len() != len(model.entries) {
				t.Fatalf("step %d: Len = %d, model %d", i, m.Len(), len(model.entries))
			}
		}
		// Final full-scan equivalence.
		seen := map[string]any{}
		m.Scan(func(k rel.Key, v any) bool {
			if _, dup := seen[k.String()]; dup {
				t.Fatalf("scan yielded duplicate key %v", k)
			}
			seen[k.String()] = v
			return true
		})
		if len(seen) != len(model.entries) {
			t.Fatalf("scan yielded %d entries, model has %d", len(seen), len(model.entries))
		}
		for ks, e := range model.entries {
			if seen[ks] != e.val {
				t.Fatalf("scan value mismatch for %s: %v vs %v", ks, seen[ks], e.val)
			}
		}
	})
}

func TestSortedScanOrder(t *testing.T) {
	for _, kind := range mapKinds {
		if !PropertiesOf(kind).SortedScan {
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			m := New(kind)
			model := newModel()
			for i := 0; i < 2000; i++ {
				k := rel.NewKey(r.Intn(500), r.Intn(3))
				if r.Intn(3) == 0 {
					m.Write(k, nil)
					model.write(k, nil)
				} else {
					m.Write(k, i)
					model.write(k, i)
				}
			}
			var got []rel.Key
			m.Scan(func(k rel.Key, v any) bool { got = append(got, k); return true })
			want := model.sortedKeys()
			if len(got) != len(want) {
				t.Fatalf("scan length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
				}
				if i > 0 && rel.CompareKeys(got[i-1], got[i]) >= 0 {
					t.Fatalf("scan not strictly ascending at %d", i)
				}
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		m := New(kind)
		for i := 0; i < 100; i++ {
			m.Write(rel.NewKey(i), i)
		}
		count := 0
		m.Scan(func(rel.Key, any) bool {
			count++
			return count < 10
		})
		if count != 10 {
			t.Fatalf("early stop visited %d entries, want 10", count)
		}
	})
}

func TestGrowthAndShrink(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		m := New(kind)
		const n = 3000
		for i := 0; i < n; i++ {
			m.Write(rel.NewKey(i), i*2)
		}
		if m.Len() != n {
			t.Fatalf("Len = %d, want %d", m.Len(), n)
		}
		for i := 0; i < n; i++ {
			v, ok := m.Lookup(rel.NewKey(i))
			if !ok || v != i*2 {
				t.Fatalf("Lookup(%d) = %v, %v", i, v, ok)
			}
		}
		for i := 0; i < n; i += 2 {
			m.Write(rel.NewKey(i), nil)
		}
		if m.Len() != n/2 {
			t.Fatalf("after removals Len = %d, want %d", m.Len(), n/2)
		}
		for i := 0; i < n; i++ {
			_, ok := m.Lookup(rel.NewKey(i))
			if want := i%2 == 1; ok != want {
				t.Fatalf("Lookup(%d) present=%v, want %v", i, ok, want)
			}
		}
	})
}

func TestHeterogeneousKeys(t *testing.T) {
	forEachMapKind(t, func(t *testing.T, kind Kind) {
		m := New(kind)
		keys := []rel.Key{
			rel.NewKey("alpha"), rel.NewKey(1), rel.NewKey(int64(2)),
			rel.NewKey(3.5), rel.NewKey(true), rel.NewKey("beta", 7),
		}
		for i, k := range keys {
			m.Write(k, i)
		}
		for i, k := range keys {
			if v, ok := m.Lookup(k); !ok || v != i {
				t.Fatalf("Lookup(%v) = %v, %v", k, v, ok)
			}
		}
		// int and int64 keys with equal value must collide.
		m.Write(rel.NewKey(int64(1)), "replaced")
		if v, _ := m.Lookup(rel.NewKey(1)); v != "replaced" {
			t.Fatalf("int/int64 key identity broken: %v", v)
		}
	})
}

func TestTreeMapDeleteStress(t *testing.T) {
	// Dedicated LLRB torture: interleaved inserts and deletes in several
	// adversarial orders, checking sorted-scan integrity throughout.
	orders := []string{"ascending", "descending", "shuffled"}
	for _, order := range orders {
		t.Run(order, func(t *testing.T) {
			m := New(TreeMap)
			const n = 512
			keys := make([]int, n)
			for i := range keys {
				keys[i] = i
			}
			switch order {
			case "descending":
				for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
					keys[i], keys[j] = keys[j], keys[i]
				}
			case "shuffled":
				r := rand.New(rand.NewSource(3))
				r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			}
			for _, k := range keys {
				m.Write(rel.NewKey(k), k)
			}
			for i, k := range keys {
				m.Write(rel.NewKey(k), nil)
				if m.Len() != n-i-1 {
					t.Fatalf("Len after %d deletes = %d", i+1, m.Len())
				}
				last := -1
				m.Scan(func(key rel.Key, v any) bool {
					cur := key.At(0).(int)
					if cur <= last {
						t.Fatalf("order violated: %d after %d", cur, last)
					}
					last = cur
					return true
				})
			}
		})
	}
}

func TestLLRBInvariants(t *testing.T) {
	// Red-black invariants: no red right links, no two reds in a row,
	// equal black height on all paths.
	m := NewTreeMap().(*treeMap)
	r := rand.New(rand.NewSource(11))
	check := func() {
		if m.root == nil {
			return
		}
		if m.root.red {
			t.Fatal("root is red")
		}
		var verify func(h *llrb) int
		verify = func(h *llrb) int {
			if h == nil {
				return 1
			}
			if isRed(h.right) {
				t.Fatal("red right link")
			}
			if isRed(h) && isRed(h.left) {
				t.Fatal("two reds in a row")
			}
			lh := verify(h.left)
			rh := verify(h.right)
			if lh != rh {
				t.Fatalf("black height mismatch: %d vs %d", lh, rh)
			}
			if !isRed(h) {
				lh++
			}
			return lh
		}
		verify(m.root)
	}
	for i := 0; i < 4000; i++ {
		k := rel.NewKey(r.Intn(300))
		if r.Intn(3) == 0 {
			m.Write(k, nil)
		} else {
			m.Write(k, i)
		}
		if i%64 == 0 {
			check()
		}
	}
	check()
}

func TestCellSemantics(t *testing.T) {
	c := New(Cell)
	k := rel.NewKey(42)
	if c.Len() != 0 {
		t.Fatal("new cell not empty")
	}
	c.Write(k, "x")
	if v, ok := c.Lookup(k); !ok || v != "x" {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if _, ok := c.Lookup(rel.NewKey(43)); ok {
		t.Fatal("cell matched wrong key")
	}
	if c.Len() != 1 {
		t.Fatal("Len != 1")
	}
	got := 0
	c.Scan(func(sk rel.Key, v any) bool {
		if !sk.Equal(k) || v != "x" {
			t.Fatalf("scan saw %v -> %v", sk, v)
		}
		got++
		return true
	})
	if got != 1 {
		t.Fatalf("scan yielded %d entries", got)
	}
	// Removing a different key is a no-op; removing the held key clears.
	c.Write(rel.NewKey(43), nil)
	if c.Len() != 1 {
		t.Fatal("mismatched remove cleared cell")
	}
	c.Write(k, nil)
	if c.Len() != 0 {
		t.Fatal("cell not cleared")
	}
}

func TestTaxonomyTable(t *testing.T) {
	table := FormatTaxonomy()
	for _, k := range Kinds() {
		if !contains(table, k.String()) {
			t.Errorf("taxonomy table missing %s:\n%s", k, table)
		}
	}
	// Figure 1 spot checks.
	if PropertiesOf(HashMap).ConcurrencySafe() {
		t.Error("HashMap must not be concurrency-safe")
	}
	if !PropertiesOf(ConcurrentHashMap).ConcurrencySafe() {
		t.Error("ConcurrentHashMap must be concurrency-safe")
	}
	if PropertiesOf(ConcurrentHashMap).SnapshotScan {
		t.Error("ConcurrentHashMap iteration must be weakly consistent, not snapshot")
	}
	if !PropertiesOf(CopyOnWriteMap).SnapshotScan {
		t.Error("CopyOnWriteMap iteration must be snapshot")
	}
	if !PropertiesOf(TreeMap).SortedScan || PropertiesOf(HashMap).SortedScan {
		t.Error("sorted-scan flags wrong")
	}
	if !PropertiesOf(ConcurrentSkipListMap).LinearizableReads() {
		t.Error("skip list lookups must be linearizable (needed for speculative locking)")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestKindString(t *testing.T) {
	if HashMap.String() != "HashMap" || Kind(99).String() == "" {
		t.Fatal("Kind.String broken")
	}
	if Unsafe.String() != "no" || Weak.String() != "weak" || Linearizable.String() != "yes" {
		t.Fatal("Safety.String broken")
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(Kind(99)) },
		func() { PropertiesOf(Kind(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScanSnapshotVsWeak(t *testing.T) {
	// A CopyOnWriteMap scan must not observe a write that happens after
	// the scan began (single-threaded check of the snapshot property).
	m := New(CopyOnWriteMap)
	for i := 0; i < 10; i++ {
		m.Write(rel.NewKey(i), i)
	}
	seen := 0
	m.Scan(func(k rel.Key, v any) bool {
		if seen == 0 {
			m.Write(rel.NewKey(999), 999) // mutate mid-scan
		}
		if k.Equal(rel.NewKey(999)) {
			t.Fatal("snapshot scan observed concurrent write")
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Fatalf("scan saw %d entries, want 10", seen)
	}
	if m.Len() != 11 {
		t.Fatal("write during scan lost")
	}
}

func ExampleFormatTaxonomy() {
	table := FormatTaxonomy()
	fmt.Println(table[:14])
	// Output: Data Structure
}
