package container

import (
	"sync/atomic"

	"repro/internal/rel"
)

// cell is the singleton-tuple container backing the dotted edges of
// Figures 2 and 3: a decomposition edge whose source node functionally
// determines the edge columns holds at most one entry, so the "container"
// is a single atomically published (key, value) pair. All operation pairs
// are safe and linearizable.
type cell struct {
	p atomic.Pointer[cowEntry]
}

// NewCell returns an empty singleton container.
func NewCell() Map {
	return &cell{}
}

// Lookup returns the value if the cell holds exactly key k.
func (c *cell) Lookup(k rel.Key) (any, bool) {
	if e := c.p.Load(); e != nil && e.key.Equal(k) {
		return e.val, true
	}
	return nil, false
}

// Write stores the single entry (v != nil) or clears the cell if it holds
// key k (v == nil). Storing a second distinct key replaces the first; the
// synthesizer only ever stores one key per cell because the source node's
// key columns functionally determine the edge columns.
func (c *cell) Write(k rel.Key, v any) {
	if v == nil {
		if e := c.p.Load(); e != nil && e.key.Equal(k) {
			c.p.CompareAndSwap(e, nil)
		}
		return
	}
	c.p.Store(&cowEntry{key: k, val: v})
}

// Scan yields the single entry, if present (trivially sorted and a
// snapshot).
func (c *cell) Scan(f func(k rel.Key, v any) bool) {
	if e := c.p.Load(); e != nil {
		f(e.key, e.val)
	}
}

// Len returns 0 or 1.
func (c *cell) Len() int {
	if c.p.Load() != nil {
		return 1
	}
	return 0
}
