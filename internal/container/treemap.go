package container

import "repro/internal/rel"

// treeMap is a from-scratch left-leaning red-black tree (Sedgewick's LLRB
// 2-3 variant), the analog of java.util.TreeMap: sorted iteration, O(log n)
// lookup and update, safe for parallel reads, unsafe under concurrent
// writes.
type treeMap struct {
	root *llrb
	size int
}

type llrb struct {
	key         rel.Key
	val         any
	left, right *llrb
	red         bool
}

// NewTreeMap returns an empty non-concurrent sorted map.
func NewTreeMap() Map {
	return &treeMap{}
}

func isRed(h *llrb) bool { return h != nil && h.red }

func rotateLeft(h *llrb) *llrb {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *llrb) *llrb {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors(h *llrb) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp(h *llrb) *llrb {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Lookup returns the value associated with k, if present.
func (m *treeMap) Lookup(k rel.Key) (any, bool) {
	h := m.root
	for h != nil {
		switch c := rel.CompareKeys(k, h.key); {
		case c < 0:
			h = h.left
		case c > 0:
			h = h.right
		default:
			return h.val, true
		}
	}
	return nil, false
}

// Write inserts, updates, or (v == nil) removes the entry for k.
func (m *treeMap) Write(k rel.Key, v any) {
	if v == nil {
		if _, ok := m.Lookup(k); !ok {
			return
		}
		m.root = llrbDelete(m.root, k)
		if m.root != nil {
			m.root.red = false
		}
		m.size--
		return
	}
	var inserted bool
	m.root, inserted = llrbInsert(m.root, k, v)
	m.root.red = false
	if inserted {
		m.size++
	}
}

func llrbInsert(h *llrb, k rel.Key, v any) (*llrb, bool) {
	if h == nil {
		return &llrb{key: k, val: v, red: true}, true
	}
	var inserted bool
	switch c := rel.CompareKeys(k, h.key); {
	case c < 0:
		h.left, inserted = llrbInsert(h.left, k, v)
	case c > 0:
		h.right, inserted = llrbInsert(h.right, k, v)
	default:
		h.val = v
	}
	return fixUp(h), inserted
}

func moveRedLeft(h *llrb) *llrb {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *llrb) *llrb {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func llrbMin(h *llrb) *llrb {
	for h.left != nil {
		h = h.left
	}
	return h
}

func llrbDeleteMin(h *llrb) *llrb {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = llrbDeleteMin(h.left)
	return fixUp(h)
}

// llrbDelete removes k from the subtree; the key must be present.
func llrbDelete(h *llrb, k rel.Key) *llrb {
	if rel.CompareKeys(k, h.key) < 0 {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = llrbDelete(h.left, k)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if rel.CompareKeys(k, h.key) == 0 && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if rel.CompareKeys(k, h.key) == 0 {
			min := llrbMin(h.right)
			h.key, h.val = min.key, min.val
			h.right = llrbDeleteMin(h.right)
		} else {
			h.right = llrbDelete(h.right, k)
		}
	}
	return fixUp(h)
}

// Scan iterates over entries in ascending key order.
func (m *treeMap) Scan(f func(k rel.Key, v any) bool) {
	scanLLRB(m.root, f)
}

func scanLLRB(h *llrb, f func(k rel.Key, v any) bool) bool {
	if h == nil {
		return true
	}
	if !scanLLRB(h.left, f) {
		return false
	}
	if !f(h.key, h.val) {
		return false
	}
	return scanLLRB(h.right, f)
}

// Len returns the number of entries.
func (m *treeMap) Len() int { return m.size }
