package query

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

func dirSpec() rel.Spec {
	return rel.MustSpec([]string{"parent", "name", "child"},
		rel.FD{From: []string{"parent", "name"}, To: []string{"child"}})
}

func graphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// dcache is the Figure 2(a) decomposition.
func dcache(t *testing.T) *decomp.Decomposition {
	t.Helper()
	d, err := decomp.NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, container.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func stick(t *testing.T) *decomp.Decomposition {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.TreeMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func diamondSpec(t *testing.T) (*decomp.Decomposition, *locks.Placement) {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"src"}, container.ConcurrentHashMap).
		Edge("ρy", "ρ", "y", []string{"dst"}, container.ConcurrentHashMap).
		Edge("xz", "x", "z", []string{"dst"}, container.TreeMap).
		Edge("yz", "y", "z", []string{"src"}, container.TreeMap).
		Edge("zw", "z", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 16)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	p.PlaceSpeculative(d.EdgeByName("ρy"), d.Root, "dst")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, p
}

// TestPaperPlan2 reproduces §5.2 plan (2): full iteration over the dcache
// relation under a coarse placement should use the direct ρy + yz path
// and print in the paper's notation.
func TestPaperPlan2(t *testing.T) {
	d := dcache(t)
	p := locks.Coarse(d)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, p)
	plan, err := pl.PlanQuery(nil, []string{"parent", "name", "child"})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.String()
	want := "" +
		"1: let _ = lock(a, ρ) in\n" +
		"2: let b = scan(scan(a, ρy), yz) in\n" +
		"3: let _ = unlock(a, ρ) in\n" +
		"4: b\n"
	if got != want {
		t.Fatalf("plan (2) mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPaperPlan3 reproduces §5.2 plan (3): the alternative path via
// ρx, xy, yz under the coarse placement must also be enumerated.
func TestPaperPlan3(t *testing.T) {
	d := dcache(t)
	p := locks.Coarse(d)
	pl := NewPlanner(d, p)
	plans, err := pl.EnumerateQueryPlans(nil, []string{"parent", "name", "child"})
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"1: let _ = lock(a, ρ) in\n" +
		"2: let b = scan(scan(scan(a, ρx), xy), yz) in\n" +
		"3: let _ = unlock(a, ρ) in\n" +
		"4: b\n"
	for _, plan := range plans {
		if plan.String() == want {
			return
		}
	}
	t.Fatalf("plan (3) not among %d enumerated plans", len(plans))
}

// TestPaperPlan4 reproduces §5.2 plan (4): the same query under the
// fine-grain placement of Figure 2(a) locks each node along the path.
func TestPaperPlan4(t *testing.T) {
	d := dcache(t)
	p := locks.FineGrained(d)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, p)
	plans, err := pl.EnumerateQueryPlans(nil, []string{"parent", "name", "child"})
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"1: let _ = lock(a, ρ) in\n" +
		"2: let b = scan(a, ρx) in\n" +
		"3: let _ = lock(b, x) in\n" +
		"4: let c = scan(b, xy) in\n" +
		"5: let _ = lock(c, y) in\n" +
		"6: let d = scan(c, yz) in\n" +
		"7: let _ = unlock(c, y) in\n" +
		"8: let _ = unlock(b, x) in\n" +
		"9: let _ = unlock(a, ρ) in\n" +
		"10: d\n"
	for _, plan := range plans {
		if plan.String() == want {
			return
		}
	}
	var all []string
	for _, plan := range plans {
		all = append(all, plan.String())
	}
	t.Fatalf("plan (4) not among enumerated plans:\n%s", strings.Join(all, "\n---\n"))
}

func TestPlannerPrefersLookupPath(t *testing.T) {
	// Directory lookup by (parent, name): the hashtable edge ρy should
	// beat the two-level TreeMap path on cost.
	d := dcache(t)
	pl := NewPlanner(d, locks.Coarse(d))
	plan, err := pl.PlanQuery([]string{"parent", "name"}, []string{"child"})
	if err != nil {
		t.Fatal(err)
	}
	edges := plan.AccessEdges()
	if len(edges) == 0 || edges[0].Name != "ρy" {
		t.Fatalf("expected plan via ρy, got %v", plan)
	}
	for _, s := range plan.Steps {
		if s.Kind == StepLookup && s.Edge.Name == "ρy" {
			return
		}
	}
	t.Fatalf("ρy should be a lookup: %v", plan)
}

func TestPlannerScanWhenUnbound(t *testing.T) {
	// Successors query on the stick: lookup ρu by src, then scan uv.
	d := stick(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	plan, err := pl.PlanQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []StepKind
	for _, s := range plan.Steps {
		if s.Kind != StepLock {
			kinds = append(kinds, s.Kind)
		}
	}
	if len(kinds) != 3 || kinds[0] != StepLookup || kinds[1] != StepScan || kinds[2] != StepScan {
		t.Fatalf("unexpected access kinds %v in plan:\n%s", kinds, plan)
	}
}

func TestPlannerPredecessorsOnStickScansEverything(t *testing.T) {
	// Predecessors on a stick must scan ρu (unbound src) — the structural
	// reason sticks lose on predecessor-heavy workloads (§6.2).
	d := stick(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	plan, err := pl.PlanQuery([]string{"dst"}, []string{"src", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	first := plan.AccessEdges()[0]
	if first.Name != "ρu" {
		t.Fatalf("expected scan from ρu, got %s", first.Name)
	}
	if plan.Steps[1].Kind != StepScan {
		t.Fatalf("ρu access should be a scan: %v", plan.Steps[1].Kind)
	}
	// And it must cost more than the successors query.
	succ, err := pl.PlanQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost <= succ.Cost {
		t.Fatalf("predecessor scan should cost more: %f vs %f", plan.Cost, succ.Cost)
	}
}

func TestSpeculativePlanUsesSpecLookup(t *testing.T) {
	d, p := diamondSpec(t)
	pl := NewPlanner(d, p)
	plan, err := pl.PlanQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range plan.Steps {
		if s.Kind == StepSpecLookup && s.Edge.Name == "ρx" {
			found = true
		}
	}
	if !found {
		t.Fatalf("speculative lookup missing from plan:\n%s", plan)
	}
	if err := plan.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeScanTakesAllFallbackStripes(t *testing.T) {
	d, p := diamondSpec(t)
	pl := NewPlanner(d, p)
	plan, err := pl.PlanQuery(nil, []string{"src", "dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	// The root lock step must include an All selector (scan over a
	// speculative edge needs every fallback stripe).
	for _, s := range plan.Steps {
		if s.Kind == StepLock && s.Node == d.Root {
			for _, sel := range s.Selectors {
				if sel.All {
					return
				}
			}
		}
	}
	t.Fatalf("expected an All fallback selector at the root:\n%s", plan)
}

func TestPreSortedDetection(t *testing.T) {
	// Fine placement, sorted TreeMap edges with sorted column order: the
	// lock step after the first scan must be pre-sorted (§5.2's elision).
	d := dcache(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	plans, err := pl.EnumerateQueryPlans(nil, []string{"parent", "name", "child"})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range plans {
		if len(plan.AccessEdges()) == 3 { // the ρx,xy,yz path
			for _, s := range plan.Steps {
				if s.Kind == StepLock && s.Node.Name == "x" {
					if !s.PreSorted {
						t.Fatalf("lock(x) after sorted scan should be pre-sorted:\n%s", plan)
					}
					return
				}
			}
		}
	}
	t.Fatal("expected plan not found")
}

func TestPreSortedNotClaimedForHashScan(t *testing.T) {
	// Same shape but with a HashMap top edge: no sort elision.
	d, err := decomp.NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.HashMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, locks.FineGrained(d))
	plan, err := pl.PlanQuery(nil, []string{"parent", "name", "child"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Kind == StepLock && s.Node.Name == "x" && s.PreSorted {
			t.Fatalf("hash scan wrongly marked pre-sorted:\n%s", plan)
		}
	}
}

func TestPlanValidateCatchesViolations(t *testing.T) {
	d := dcache(t)
	p := locks.FineGrained(d)
	// Hand-build an invalid plan: access before lock.
	bad := &Plan{Steps: []Step{{Kind: StepScan, Edge: d.EdgeByName("ρx")}}}
	if err := bad.Validate(p); err == nil {
		t.Fatal("expected validation error for unlocked access")
	}
	// Lock steps out of node order.
	bad2 := &Plan{Steps: []Step{
		{Kind: StepLock, Node: d.NodeByName("x"), Mode: locks.Shared},
		{Kind: StepLock, Node: d.Root, Mode: locks.Shared},
	}}
	if err := bad2.Validate(p); err == nil {
		t.Fatal("expected validation error for lock order")
	}
	// Lookup with unbound key columns.
	bad3 := &Plan{Steps: []Step{
		{Kind: StepLock, Node: d.Root, Mode: locks.Shared},
		{Kind: StepLookup, Edge: d.EdgeByName("ρx")},
	}}
	if err := bad3.Validate(p); err == nil {
		t.Fatal("expected validation error for unbound lookup")
	}
}

func TestPlanUnknownColumn(t *testing.T) {
	d := dcache(t)
	pl := NewPlanner(d, locks.Coarse(d))
	if _, err := pl.PlanQuery([]string{"nope"}, nil); err == nil {
		t.Fatal("expected unknown column error")
	}
	if _, err := pl.PlanMutation(OpInsert, []string{"nope"}); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestMutationPlanStructure(t *testing.T) {
	d := dcache(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	m, err := pl.PlanMutation(OpInsert, []string{"name", "parent"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerNode) != len(d.Nodes) {
		t.Fatalf("directives for %d nodes, want %d", len(m.PerNode), len(d.Nodes))
	}
	for i, nd := range m.PerNode {
		if nd.Node != d.Nodes[i] {
			t.Fatalf("directive %d out of topo order", i)
		}
	}
	// Root has no access edge; every other node does (no speculative
	// edges here).
	if m.PerNode[0].AccessIn != nil {
		t.Fatal("root should have no access edge")
	}
	for _, nd := range m.PerNode[1:] {
		if nd.AccessIn == nil && len(nd.SpecIns) == 0 {
			t.Fatalf("node %s has no access path", nd.Node.Name)
		}
	}
	if !strings.Contains(m.String(), "insert plan") {
		t.Fatal("String() broken")
	}
}

func TestMutationRemoveRequiresKey(t *testing.T) {
	d := dcache(t)
	pl := NewPlanner(d, locks.Coarse(d))
	if _, err := pl.PlanMutation(OpRemove, []string{"parent"}); err == nil {
		t.Fatal("remove by non-key must be rejected")
	}
	if _, err := pl.PlanMutation(OpRemove, []string{"parent", "name"}); err != nil {
		t.Fatalf("remove by key should plan: %v", err)
	}
}

func TestMutationSpecEdgeCoverage(t *testing.T) {
	d, p := diamondSpec(t)
	pl := NewPlanner(d, p)
	m, err := pl.PlanMutation(OpInsert, []string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	// x and y are located via speculative in-edges.
	var xDir, yDir *NodeDirective
	for i := range m.PerNode {
		switch m.PerNode[i].Node.Name {
		case "x":
			xDir = &m.PerNode[i]
		case "y":
			yDir = &m.PerNode[i]
		}
	}
	if xDir == nil || len(xDir.SpecIns) != 1 || xDir.SpecIns[0].Name != "ρx" {
		t.Fatalf("x directive wrong: %+v", xDir)
	}
	if yDir == nil || len(yDir.SpecIns) != 1 {
		t.Fatalf("y directive wrong: %+v", yDir)
	}
	// Root directive carries the fallback selectors for both edges.
	if len(m.PerNode[0].Selectors) < 2 {
		t.Fatalf("root selectors missing: %+v", m.PerNode[0])
	}
}

func TestMutationRejectsSpecEdgeOutsideKey(t *testing.T) {
	// A speculative edge keyed by a column outside the mutation key is
	// unsupported (documented planner limitation).
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentHashMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 4)
	p.PlaceSpeculative(d.EdgeByName("ρu"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, p)
	if _, err := pl.PlanMutation(OpInsert, []string{"dst", "weight"}); err == nil {
		t.Fatal("expected rejection: spec edge keyed outside bound columns")
	}
}

func TestRemoveSelectorConservatism(t *testing.T) {
	// Entry-level striping on a concurrent container: remove must degrade
	// the selector to All (cleanup observes container emptiness).
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentHashMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src") // entry-level at root
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, p)
	m, err := pl.PlanMutation(OpRemove, []string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	root := m.PerNode[0]
	foundAll := false
	for _, s := range root.Selectors {
		if s.All {
			foundAll = true
		}
	}
	if !foundAll {
		t.Fatalf("remove over entry-striped root edge should take all stripes: %+v", root.Selectors)
	}
	// Insert, by contrast, can use the single bound stripe.
	mi, err := pl.PlanMutation(OpInsert, []string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mi.PerNode[0].Selectors {
		if s.All {
			t.Fatalf("insert should keep the bound selector: %+v", mi.PerNode[0].Selectors)
		}
	}
}

func TestCostModelRanksStripeScans(t *testing.T) {
	// A full scan under a heavily striped placement must cost more than
	// under a single-lock placement (iteration takes all k locks, §4.4).
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	coarse := locks.Coarse(d)
	striped := locks.NewPlacement(d)
	striped.SetStripes(d.Root, 1024)
	striped.Place(d.EdgeByName("ρu"), d.Root, "src")
	if err := striped.Validate(); err != nil {
		t.Fatal(err)
	}
	full := []string{"dst", "src", "weight"}
	pc, err := NewPlanner(d, coarse).PlanQuery(nil, full)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPlanner(d, striped).PlanQuery(nil, full)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cost <= pc.Cost {
		t.Fatalf("striped full scan should cost more: %f vs %f", ps.Cost, pc.Cost)
	}
}
