package query

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/rel"
)

// OpKind discriminates the two mutation operations of §2.
type OpKind int

const (
	// OpInsert is insert r s t (put-if-absent generalization).
	OpInsert OpKind = iota
	// OpRemove is remove r s, with s a key for the relation.
	OpRemove
)

// String renders the operation kind.
func (k OpKind) String() string {
	if k == OpRemove {
		return "remove"
	}
	return "insert"
}

// NodeDirective drives the executor's handling of one decomposition node
// during a mutation's growing phase. Directives are executed in
// topological node order, which keeps every lock acquisition in the global
// lock order of §5.1.
type NodeDirective struct {
	Node *decomp.Node
	// Selectors for the lock step at this node: the stripe selectors of
	// every rule whose physical locks live here (own placements plus
	// speculative fallbacks). Empty means no locks at this node.
	Selectors []Selector
	// AccessIn is the in-edge used to locate this node's instances (nil
	// for the root). Speculative in-edges are located via SpecIns instead.
	AccessIn *decomp.Edge
	// AccessScan is true when AccessIn must be scanned (its key columns
	// are not bound) rather than looked up; FilterCols are checked
	// against scan results.
	AccessScan bool
	FilterCols []string
	// SpecIns lists speculative in-edges of this node, located and locked
	// with the §4.5 protocol (the conservative fallback stripes were taken
	// at the fallback node's directive).
	SpecIns []*decomp.Edge

	// Compiled (schema-resolved) offsets, filled by the planner; see the
	// matching fields on Step for semantics. ColIdx/FilterPos/FilterIdx
	// describe AccessIn; SpecColIdx/SpecTargetIdx are aligned with
	// SpecIns.
	ColIdx        []int
	FilterPos     []int
	FilterIdx     []int
	SpecColIdx    [][]int
	SpecTargetIdx [][]int
}

// MutationPlan is the compiled growing phase of an insert or remove: lock
// and locate directives per node. The write/delete phases that follow are
// structural (every in-edge of every node) and implemented directly by
// the executor.
type MutationPlan struct {
	Kind  OpKind
	Bound []string // dom(s)
	// PerNode holds one directive per decomposition node, in topological
	// order.
	PerNode []NodeDirective
	Cost    float64
	// LockPortion / AllStripePortion split Cost as on Plan; BatchCost
	// amortizes them against a BatchProfile.
	LockPortion      float64
	AllStripePortion float64
	// Prog is the compiled round map of the growing phase; its pointer is
	// the plan-identity key of the batch executor (roundmap.go).
	Prog *MutationProgram

	// BoundMask is the schema-resolved bound-column bitmask, filled by
	// the planner (see Plan).
	BoundMask uint64
}

// String summarizes the plan.
func (m *MutationPlan) String() string {
	s := fmt.Sprintf("%s plan (bound %v):\n", m.Kind, m.Bound)
	for _, nd := range m.PerNode {
		s += fmt.Sprintf("  node %s:", nd.Node.Name)
		if len(nd.Selectors) > 0 {
			s += fmt.Sprintf(" lock[%d selectors]", len(nd.Selectors))
		}
		if nd.AccessIn != nil {
			verb := "lookup"
			if nd.AccessScan {
				verb = "scan"
			}
			s += fmt.Sprintf(" %s(%s)", verb, nd.AccessIn.Name)
		}
		for _, e := range nd.SpecIns {
			s += fmt.Sprintf(" speclookup(%s)", e.Name)
		}
		s += "\n"
	}
	return s
}

// PlanMutation compiles the growing phase of an insert or remove whose
// input tuple binds the given columns. For OpRemove, bound must be a key
// of the relation (§2). The plan locks every node's instances exclusively
// in topological order and locates the instances relevant to the bound
// tuple, after which the executor can run the put-if-absent check, the
// writes, or the cascading deletes entirely under held locks.
func (pl *Planner) PlanMutation(kind OpKind, bound []string) (*MutationPlan, error) {
	for _, c := range bound {
		if !pl.D.Spec.HasColumn(c) {
			return nil, fmt.Errorf("query: unknown column %q", c)
		}
	}
	if kind == OpRemove && !pl.D.Spec.IsKey(bound) {
		return nil, fmt.Errorf("query: remove requires a key; %v does not determine %v", bound, pl.D.Spec.Columns)
	}
	boundSet := map[string]bool{}
	for _, c := range bound {
		boundSet[c] = true
	}

	m := &MutationPlan{Kind: kind, Bound: append([]string(nil), bound...)}
	// Per-node selector accumulation.
	selectors := make([][]Selector, len(pl.D.Nodes))
	for _, e := range pl.D.Edges {
		r := pl.P.RuleFor(e)
		if r.Speculative {
			if !rel.ColsSubset(e.Cols, bound) {
				return nil, fmt.Errorf("query: speculative edge %s keyed by %v is not covered by the %s key %v; this placement cannot support the operation",
					e.Name, e.Cols, kind, bound)
			}
			selectors[r.FallbackAt.Index] = append(selectors[r.FallbackAt.Index],
				pl.mutationSelector(kind, e, r.FallbackStripeBy, boundSet))
			continue
		}
		selectors[r.At.Index] = append(selectors[r.At.Index],
			pl.mutationSelector(kind, e, r.StripeBy, boundSet))
	}

	// Observed columns grow as scans run, in topo order.
	observed := append([]string(nil), bound...)
	cost := 0.0
	lockPortion, allStripe := 0.0, 0.0
	for _, n := range pl.D.Nodes {
		nd := NodeDirective{Node: n, Selectors: selectors[n.Index]}
		if n != pl.D.Root {
			// Partition in-edges: speculative ones use the §4.5 protocol;
			// of the rest, pick the cheapest usable access edge.
			var best *decomp.Edge
			bestScan := false
			bestCost := 0.0
			for _, e := range n.In {
				if pl.P.RuleFor(e).Speculative {
					nd.SpecIns = append(nd.SpecIns, e)
					continue
				}
				keyed := rel.ColsSubset(e.Cols, observed)
				c := pl.Model.lookupCost(e.Container)
				if !keyed {
					c = pl.Model.ScanEntryCost * pl.Model.Fanout
				}
				if best == nil || c < bestCost {
					best, bestScan, bestCost = e, !keyed, c
				}
			}
			switch {
			case best != nil:
				nd.AccessIn = best
				nd.AccessScan = bestScan
				if bestScan {
					nd.FilterCols = rel.ColsIntersect(best.Cols, observed)
				}
				cost += bestCost
			case len(nd.SpecIns) > 0:
				// Located purely via speculative in-edges.
				cost += pl.Model.lookupCost(nd.SpecIns[0].Container) + pl.Model.LockCost
				lockPortion += pl.Model.LockCost
			default:
				return nil, fmt.Errorf("query: node %s has no usable access edge for %s over %v", n.Name, kind, bound)
			}
			// Whatever edge located the node, its columns are observed.
			observed = rel.ColsUnion(observed, n.A)
		}
		// Lock cost at this node.
		for _, s := range nd.Selectors {
			if s.All {
				c := pl.Model.LockCost * float64(pl.P.StripeCount(n))
				cost += c
				lockPortion += c
				allStripe += c
			} else {
				cost += pl.Model.LockCost
				lockPortion += pl.Model.LockCost
			}
		}
		m.PerNode = append(m.PerNode, nd)
	}
	m.Cost = cost
	m.LockPortion, m.AllStripePortion = lockPortion, allStripe
	pl.compileMutation(m)
	return m, nil
}

// mutationSelector computes the stripe selector for edge e under a
// mutation bound to the given columns: a bound selector takes one stripe;
// anything else degrades to all stripes. Removes additionally require the
// selector to be constant per source container (⊆ A_src) because the
// cascade-cleanup phase observes container emptiness, which touches every
// entry's logical lock.
func (pl *Planner) mutationSelector(kind OpKind, e *decomp.Edge, stripeBy []string, bound map[string]bool) Selector {
	for _, c := range stripeBy {
		if !bound[c] {
			return Selector{All: true}
		}
	}
	if kind == OpRemove && !rel.ColsSubset(stripeBy, e.Src.A) && len(stripeBy) > 0 {
		return Selector{All: true}
	}
	return Selector{Cols: append([]string(nil), stripeBy...)}
}
