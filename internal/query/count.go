package query

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Count pushdown: query r s C used only for its cardinality does not need
// the values of any output column, so the planner can stop as soon as the
// bound columns are consumed and count the remaining subtree by container
// size. The count of tuples below an edge entry is exactly 1 when the
// entry's bound columns form a key of the relation (the FDs pin every
// remaining column, and the cleanup invariant guarantees at least one
// complete path), so counting degenerates to one Len() call on a container
// whose lock the plan already holds — the relational analog of COUNT(*)
// index-only pushdown. The §6.2 benchmark's find-successors and
// find-predecessors operations hit this path.

// StepCount is the terminal step of a count plan: sum the entry counts of
// edge Edge's containers over the current states. The plan's preceding
// lock step covers the edge (a Len read observes presence and absence of
// every entry, like a scan).
const StepCount StepKind = 99

// PlanCount returns the cheapest plan computing |query r s C| (any C).
// If no counting edge is available the caller should fall back to a full
// query plan.
func (pl *Planner) PlanCount(bound []string) (*Plan, error) {
	for _, c := range bound {
		if !pl.D.Spec.HasColumn(c) {
			return nil, fmt.Errorf("query: unknown column %q", c)
		}
	}
	var best *Plan
	var dfs func(n *decomp.Node, boundNow, covered []string, path []*decomp.Edge)
	dfs = func(n *decomp.Node, boundNow, covered []string, path []*decomp.Edge) {
		if rel.ColsSubset(bound, covered) {
			// This node can serve as the counting frontier; deeper
			// frontiers may still be cheaper (or the only ones with a
			// keyed counting edge), so keep descending one level.
			if p := pl.assembleCount(bound, path, n); p != nil {
				if best == nil || p.Cost < best.Cost {
					best = p
				}
				return
			}
		}
		for _, e := range n.Out {
			dfs(e.Dst,
				rel.ColsUnion(boundNow, e.Cols),
				rel.ColsUnion(covered, e.Cols),
				append(path, e))
		}
	}
	dfs(pl.D.Root, bound, nil, nil)
	if best != nil {
		return best, nil
	}
	// No frontier admitted a keyed counting edge: fall back to a full
	// traversal whose surviving states are counted directly.
	return pl.PlanQuery(bound, pl.D.Spec.Columns)
}

// assembleCount builds a plan that traverses path and finishes with a
// counting step at the frontier node, or counts surviving states directly
// when the frontier is a unit node.
func (pl *Planner) assembleCount(bound []string, path []*decomp.Edge, frontier *decomp.Node) *Plan {
	if frontier.IsUnit() {
		p, err := pl.assemble(bound, nil, path, locks.Shared)
		if err != nil {
			return nil
		}
		return p
	}
	// Pick a counting edge: an out-edge whose target's bound columns form
	// a key, so each entry represents exactly one tuple. Prefer the
	// cheapest (they are all O(1) Len reads; prefer non-speculative).
	var count *decomp.Edge
	for _, e := range frontier.Out {
		if !pl.D.Spec.IsKey(e.Dst.A) {
			continue
		}
		if pl.P.RuleFor(e).Speculative {
			continue // a Len read under speculative placement has no single target lock
		}
		if count == nil {
			count = e
		}
	}
	if count == nil {
		// No keyed counting edge at this frontier; the caller descends.
		return nil
	}
	p, err := pl.assemble(bound, nil, path, locks.Shared)
	if err != nil {
		return nil
	}
	// Lock requirement for the Len read: same as a scan over the edge.
	boundSet := map[string]bool{}
	for _, c := range bound {
		boundSet[c] = true
	}
	r := pl.P.RuleFor(count)
	sel := pl.selectorFor(r.StripeBy, boundSet)
	// A Len read observes every entry, so a single stripe only suffices
	// when the selector is constant per container (⊆ the source's bound
	// columns).
	if !sel.All && len(r.StripeBy) > 0 && !rel.ColsSubset(r.StripeBy, count.Src.A) {
		sel = Selector{All: true}
	}
	p.Steps = append(p.Steps,
		Step{Kind: StepLock, Node: r.At, Mode: locks.Shared, Selectors: []Selector{sel}},
		Step{Kind: StepCount, Edge: count})
	p.Cost += pl.Model.LockCost + 0.2
	p.LockPortion += pl.Model.LockCost
	if sel.All {
		p.AllStripePortion += pl.Model.LockCost
	}
	pl.compilePlan(p)
	return p
}
