package query

import (
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
)

func hasCountStep(p *Plan) (*Step, bool) {
	for i := range p.Steps {
		if p.Steps[i].Kind == StepCount {
			return &p.Steps[i], true
		}
	}
	return nil, false
}

func TestPlanCountUsesKeyedEdge(t *testing.T) {
	d := stick(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	// Successors by src: stop at u, count the uv container (its target
	// binds {src,dst}, a key).
	p, err := pl.PlanCount([]string{"src"})
	if err != nil {
		t.Fatal(err)
	}
	step, ok := hasCountStep(p)
	if !ok {
		t.Fatalf("no count step:\n%+v", p.Steps)
	}
	if step.Edge.Name != "uv" {
		t.Fatalf("count edge = %s, want uv", step.Edge.Name)
	}
	// The plan must not traverse uv or vw.
	for _, e := range p.AccessEdges() {
		if e.Name == "vw" {
			t.Fatal("count plan should not reach the weight cell")
		}
	}
	// The counting edge's placement (node u) must be locked by the plan.
	lockedU := false
	for _, s := range p.Steps {
		if s.Kind == StepLock && s.Node.Name == "u" {
			lockedU = true
		}
	}
	if !lockedU {
		t.Fatalf("count plan must lock the counting edge's placement:\n%+v", p.Steps)
	}
}

func TestPlanCountFullKeyStopsAtUnit(t *testing.T) {
	d := stick(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	// Bound by the full column set: the frontier is the unit node and the
	// plan counts surviving states (no StepCount needed).
	p, err := pl.PlanCount([]string{"dst", "src", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hasCountStep(p); ok {
		t.Fatalf("full-key count should not need a count step:\n%+v", p.Steps)
	}
}

func TestPlanCountEmptyBoundDescends(t *testing.T) {
	d := stick(t)
	pl := NewPlanner(d, locks.FineGrained(d))
	// Counting the whole relation: the root has no keyed counting edge
	// (its out-edge targets bind only {src}), so the plan must descend
	// one level and count uv containers across a top-level scan.
	p, err := pl.PlanCount(nil)
	if err != nil {
		t.Fatal(err)
	}
	step, ok := hasCountStep(p)
	if !ok {
		t.Fatalf("expected count step:\n%+v", p.Steps)
	}
	if step.Edge.Name != "uv" {
		t.Fatalf("count edge = %s, want uv", step.Edge.Name)
	}
	edges := p.AccessEdges()
	if len(edges) == 0 || edges[0].Name != "ρu" {
		t.Fatalf("whole-relation count should scan ρu first: %v", edges)
	}
}

func TestPlanCountStripedLenTakesAllStripes(t *testing.T) {
	// Entry-level striping on the counting edge: a Len read observes
	// every entry, so the lock step must carry an All selector.
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentHashMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.NodeByName("u"), 8)
	p.Place(d.EdgeByName("uv"), d.NodeByName("u"), "dst")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, p)
	plan, err := pl.PlanCount([]string{"src"})
	if err != nil {
		t.Fatal(err)
	}
	step, ok := hasCountStep(plan)
	if !ok || step.Edge.Name != "uv" {
		t.Fatalf("count step missing: %+v", plan.Steps)
	}
	// Find the lock step that precedes the count step at node u.
	var sel *Selector
	for i := range plan.Steps {
		s := &plan.Steps[i]
		if s.Kind == StepLock && s.Node.Name == "u" {
			sel = &s.Selectors[len(s.Selectors)-1]
		}
	}
	if sel == nil || !sel.All {
		t.Fatalf("Len read over entry-striped edge must take all stripes: %+v", plan.Steps)
	}
}

func TestPlanCountSkipsSpeculativeCountingEdge(t *testing.T) {
	// With a speculative rule on the would-be counting edge there is no
	// single lock covering the Len read; the planner must descend or fall
	// back rather than emit a StepCount on it.
	d, p := diamondSpec(t)
	pl := NewPlanner(d, p)
	plan, err := pl.PlanCount([]string{"src"})
	if err != nil {
		t.Fatal(err)
	}
	if step, ok := hasCountStep(plan); ok {
		if pl.P.RuleFor(step.Edge).Speculative {
			t.Fatalf("count step over speculative edge %s", step.Edge.Name)
		}
	}
}
