package query

import "sort"

// This file implements the planner's schema-resolution pass — the second
// half of plan compilation. Plans are assembled (planner.go, mutation.go,
// count.go) in terms of column NAMES, the vocabulary of the specification
// and the decomposition; this pass then resolves every name against the
// decomposition's rel.Schema into dense integer offsets:
//
//   - ColIdx: for each position of an edge's key columns, the schema slot
//     a lookup gathers from or a scan scatters into;
//   - FilterPos/FilterIdx: which scan-entry positions are checked, and
//     against which row slots;
//   - TargetIdx: the slots holding a speculative edge's target-instance
//     key (§4.5), which also orders target acquisitions;
//   - Selector.Idx/Mask: the slots hashed for §4.4 stripe selection and
//     the bitmask that decides bound-vs-all-stripes per operation row;
//   - BoundMask/OutIdx: the operation's input validation mask and the
//     output projection.
//
// The executor in internal/core then runs entirely on those offsets —
// the library analog of the paper's generated code, which never
// re-resolves a field name at run time. Resolution is idempotent, so
// passes that extend a plan (count pushdown) simply re-invoke it.

// compilePlan fills the schema-resolved fields of p and its steps. It is
// idempotent; assembleCount re-invokes it after appending count steps.
func (pl *Planner) compilePlan(p *Plan) {
	p.BoundMask = pl.Schema.Mask(p.Bound)
	p.OutCols = dedupSorted(p.Out)
	p.OutIdx = pl.Schema.Indices(p.OutCols)
	for i := range p.Steps {
		pl.compileStep(&p.Steps[i])
	}
	pl.compileRounds(p)
}

// compileStep resolves one step's column names to schema offsets.
func (pl *Planner) compileStep(s *Step) {
	switch s.Kind {
	case StepLock:
		for i := range s.Selectors {
			pl.compileSelector(&s.Selectors[i])
		}
	case StepLookup, StepScan, StepSpecLookup:
		s.ColIdx = pl.Schema.Indices(s.Edge.Cols)
		s.TargetIdx = pl.Schema.Indices(s.Edge.Dst.A)
		s.FilterPos, s.FilterIdx = pl.compileFilter(s.Edge.Cols, s.FilterCols)
	case StepCount:
		// Count reads a container's Len; no columns to resolve.
	}
}

// compileSelector fills Idx/Mask of a non-All selector.
func (pl *Planner) compileSelector(sel *Selector) {
	if sel.All {
		return
	}
	sel.Idx = pl.Schema.Indices(sel.Cols)
	sel.Mask = pl.Schema.Mask(sel.Cols)
}

// compileFilter maps filter columns onto (position within edgeCols,
// schema index) pairs, the form scans consume.
func (pl *Planner) compileFilter(edgeCols, filterCols []string) (pos, idx []int) {
	if len(filterCols) == 0 {
		return nil, nil
	}
	in := make(map[string]bool, len(filterCols))
	for _, c := range filterCols {
		in[c] = true
	}
	for p, c := range edgeCols {
		if in[c] {
			pos = append(pos, p)
			idx = append(idx, pl.Schema.MustIndex(c))
		}
	}
	return pos, idx
}

// compileMutation fills the schema-resolved fields of a mutation plan.
func (pl *Planner) compileMutation(m *MutationPlan) {
	m.BoundMask = pl.Schema.Mask(m.Bound)
	for i := range m.PerNode {
		nd := &m.PerNode[i]
		for j := range nd.Selectors {
			pl.compileSelector(&nd.Selectors[j])
		}
		if nd.AccessIn != nil {
			nd.ColIdx = pl.Schema.Indices(nd.AccessIn.Cols)
			nd.FilterPos, nd.FilterIdx = pl.compileFilter(nd.AccessIn.Cols, nd.FilterCols)
		}
		for _, e := range nd.SpecIns {
			nd.SpecColIdx = append(nd.SpecColIdx, pl.Schema.Indices(e.Cols))
			nd.SpecTargetIdx = append(nd.SpecTargetIdx, pl.Schema.Indices(e.Dst.A))
		}
	}
	pl.compileMutationRounds(m)
}

// dedupSorted returns a sorted, duplicate-free copy of cols.
func dedupSorted(cols []string) []string {
	if len(cols) == 0 {
		return nil
	}
	out := append([]string(nil), cols...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
