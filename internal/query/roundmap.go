package query

// Round maps: the compiled lock schedules of the batched growing phase.
//
// The paper's thesis is that synchronization is COMPILED, not interpreted
// (§5): the generated code for an operation is a fixed sequence of lock
// acquisitions and container accesses. The batched executor in
// internal/core, however, grew a generic per-member cursor machine — each
// sweep of the growing phase re-inspects every member's current step,
// re-classifies it (lock? speculative? plain access?) and re-derives its
// gate from the step's fields. That classification is a pure function of
// the PLAN, so this file moves it to plan-compile time: every Plan and
// MutationPlan carries a *RoundProgram / *MutationProgram, a flat array of
// pre-classified rounds the executor walks with an integer cursor and two
// comparisons per sweep. The program pointer doubles as the plan's
// identity: members of one batch that share a compiled plan share the
// pointer, which is what the executor's memoized member grouping and the
// per-plan merge of speculative requests key on.
//
// A round is one of:
//
//   - RoundSteps: a maximal run of non-waiting access steps (lookups,
//     plain scans, the terminal count). The executor runs Steps[Lo:Hi]
//     back-to-back without yielding to the sweep.
//   - RoundLock: Steps[Lo] is a lock step. Gated on the node's position in
//     the global lock order (§5.1); executing it registers the member's
//     stripe locks in the batch's coalesced lock set and yields until the
//     wave's AcquireSet completes.
//   - RoundSpec: Steps[Lo] is a speculative access (§4.5) — a keyed
//     speculative lookup or an unkeyed speculative scan. Gated on the
//     TARGET node's lock position; executing it registers speculative
//     target requests and yields until the wave resolves them.
type RoundKind uint8

// The three round kinds; see the package comment above for semantics.
const (
	// RoundSteps runs Steps[Lo:Hi] back-to-back without yielding.
	RoundSteps RoundKind = iota
	// RoundLock acquires Steps[Lo]'s stripe locks, gated on lock order.
	RoundLock
	// RoundSpec resolves Steps[Lo]'s speculative target (§4.5).
	RoundSpec
)

// Round is one pre-classified schedule entry of a query plan.
type Round struct {
	Kind RoundKind
	// Gate is the decomposition-node index this round waits for: the
	// executor may run the round only once the sweep has reached Gate.
	// RoundSteps rounds never wait (Gate 0).
	Gate int
	// Lo:Hi is the covered range of Plan.Steps (Hi = Lo+1 for waiting
	// rounds).
	Lo, Hi int
}

// RoundProgram is the compiled schedule of one query plan. The pointer is
// stable across recompilation (count pushdown re-invokes compilePlan after
// appending steps), so it serves as the plan-identity key for the
// executor's memoized batch grouping.
type RoundProgram struct {
	Rounds []Round
}

// MutationRoundKind discriminates the schedule entries of a mutation's
// growing phase. One NodeDirective expands to one to four rounds.
type MutationRoundKind uint8

const (
	// MRoundSpecIn registers the §4.5 speculative target requests for the
	// directive's speculative in-edges and yields until the wave resolves
	// them.
	MRoundSpecIn MutationRoundKind = iota
	// MRoundLocate consumes resolved speculative targets and completes the
	// directive's instance location (for removes: row-directed locate).
	MRoundLocate
	// MRoundAccess locates the directive's instances through its plain
	// access edge (lookup or filtered scan); never waits.
	MRoundAccess
	// MRoundExist runs an insert's existence-check step at this node (the
	// put-if-absent probe); never waits. Emitted for every insert
	// directive; the executor skips it when the node has no existence
	// step.
	MRoundExist
	// MRoundLock acquires the directive's exclusive stripe locks; yields
	// for the wave's AcquireSet iff the directive carries selectors.
	MRoundLock
)

// MutationRound is one pre-classified schedule entry of a mutation plan.
type MutationRound struct {
	Kind MutationRoundKind
	// Gate is the directive node's lock-order index.
	Gate int
	// Dir indexes MutationPlan.PerNode.
	Dir int
}

// MutationProgram is the compiled schedule of one mutation plan; like
// RoundProgram, its pointer is the plan-identity key.
type MutationProgram struct {
	Rounds []MutationRound
}

// compileRounds (re)builds p.Prog from p.Steps. The Rounds slice is
// rebuilt from scratch — assembleCount appends steps and recompiles — but
// the RoundProgram pointer is reused so plan identity survives
// recompilation.
func (pl *Planner) compileRounds(p *Plan) {
	if p.Prog == nil {
		p.Prog = &RoundProgram{}
	}
	rounds := p.Prog.Rounds[:0]
	runLo := -1 // start of the current RoundSteps run, -1 when none
	flush := func(hi int) {
		if runLo >= 0 {
			rounds = append(rounds, Round{Kind: RoundSteps, Lo: runLo, Hi: hi})
			runLo = -1
		}
	}
	for i := range p.Steps {
		s := &p.Steps[i]
		switch {
		case s.Kind == StepLock:
			flush(i)
			rounds = append(rounds, Round{Kind: RoundLock, Gate: s.Node.Index, Lo: i, Hi: i + 1})
		case s.Kind == StepSpecLookup,
			s.Kind == StepScan && pl.P.RuleFor(s.Edge).Speculative:
			flush(i)
			rounds = append(rounds, Round{Kind: RoundSpec, Gate: s.Edge.Dst.Index, Lo: i, Hi: i + 1})
		default: // StepLookup, plain StepScan, StepCount
			if runLo < 0 {
				runLo = i
			}
		}
	}
	flush(len(p.Steps))
	p.Prog.Rounds = rounds
}

// compileMutationRounds builds m.Prog from m.PerNode. Directive order is
// topological node order, so round gates are non-decreasing — the same
// monotone schedule the per-member cursor machine derived sweep by sweep.
func (pl *Planner) compileMutationRounds(m *MutationPlan) {
	if m.Prog == nil {
		m.Prog = &MutationProgram{}
	}
	rounds := m.Prog.Rounds[:0]
	for d := range m.PerNode {
		nd := &m.PerNode[d]
		g := nd.Node.Index
		if nd.Node != pl.D.Root {
			// Non-root directives locate their instances first; the root's
			// instance is pinned at enqueue, so it goes straight to its lock.
			if len(nd.SpecIns) > 0 {
				rounds = append(rounds,
					MutationRound{Kind: MRoundSpecIn, Gate: g, Dir: d},
					MutationRound{Kind: MRoundLocate, Gate: g, Dir: d})
			} else {
				rounds = append(rounds, MutationRound{Kind: MRoundAccess, Gate: g, Dir: d})
			}
			if m.Kind == OpInsert {
				rounds = append(rounds, MutationRound{Kind: MRoundExist, Gate: g, Dir: d})
			}
		}
		rounds = append(rounds, MutationRound{Kind: MRoundLock, Gate: g, Dir: d})
	}
	m.Prog.Rounds = rounds
}

// BatchProfile characterizes the batches a plan will execute under, the
// input of the batch-aware costing pass: the growing phase coalesces the
// lock schedules of all members of a batch, so the effective lock cost of
// a plan is its solo lock cost divided by how well its acquisitions merge
// with its cohort's.
type BatchProfile struct {
	// Members is the expected number of members per batch sharing this
	// plan's schedule (1 = solo execution; batch costing degenerates to
	// Plan.Cost).
	Members int
	// SharedPrefix is the expected fraction [0,1] of keyed (single-stripe)
	// lock acquisitions that coincide with another member's — the shared
	// lock-prefix of the batch. All-stripe selectors always coalesce
	// fully and ignore it.
	SharedPrefix float64
	// ReadFrac is the read fraction [0,1] of the workload. On an
	// optimistic-capable representation, shared-mode lock acquisitions
	// are elided for that fraction of executions (the read-only and OCC
	// paths validate epochs instead), so it discounts a query plan's lock
	// portion. Mutation plans ignore it.
	ReadFrac float64
}

// amortize returns the batch-effective lock cost given the solo lock cost
// split into its all-stripe and keyed portions.
func (prof BatchProfile) amortize(allStripe, keyed float64) float64 {
	n := float64(prof.Members)
	if n < 1 {
		n = 1
	}
	// All-stripe selectors lock the same k stripes for every member: a
	// batch of n pays them once.
	out := allStripe / n
	// Keyed selectors coalesce only when two members hit the same stripe.
	share := prof.SharedPrefix
	if share < 0 {
		share = 0
	} else if share > 1 {
		share = 1
	}
	out += keyed / (1 + (n-1)*share)
	return out
}

// BatchCost estimates the per-member cost of executing p as one member of
// a batch matching prof: the access portion is unchanged, the lock
// portion is amortized over the members it coalesces with, and — for this
// shared-mode plan — discounted by the read fraction served lock-free.
func (p *Plan) BatchCost(prof BatchProfile) float64 {
	lockFrac := 1 - prof.ReadFrac
	if lockFrac < 0 {
		lockFrac = 0
	}
	all := p.AllStripePortion * lockFrac
	keyed := (p.LockPortion - p.AllStripePortion) * lockFrac
	return (p.Cost - p.LockPortion) + prof.amortize(all, keyed)
}

// BatchCost estimates the per-member cost of executing m as one member of
// a batch matching prof. Mutations always lock, so ReadFrac does not
// apply.
func (m *MutationPlan) BatchCost(prof BatchProfile) float64 {
	return (m.Cost - m.LockPortion) +
		prof.amortize(m.AllStripePortion, m.LockPortion-m.AllStripePortion)
}
