// Package query implements the concurrent query language of §5.2 of
// "Concurrent Data Representation Synthesis" (PLDI 2012) — the plan
// fragment of Figure 4 — together with the concurrent query planner: plan
// enumeration, a heuristic cost model, and the validity rules that force
// plans to acquire the right locks in the right global order, making every
// compiled operation serializable and deadlock-free by construction.
//
// Plans are static: the planner runs once per operation signature (the set
// of bound columns and requested output columns) and the executor in
// internal/core interprets the resulting step list at run time.
package query

import (
	"fmt"
	"strings"

	"repro/internal/decomp"
	"repro/internal/locks"
)

// StepKind discriminates plan steps.
type StepKind int

const (
	// StepLock acquires physical locks on the instances of a node present
	// in the current query states (the lock(q, v) expression of Figure 4).
	StepLock StepKind = iota
	// StepLookup follows an edge by key (lookup(q, uv)).
	StepLookup
	// StepScan iterates an edge's containers (scan(q, uv)), optionally
	// filtering on columns bound by the operation.
	StepScan
	// StepSpecLookup follows a speculatively placed edge (§4.5): an
	// unlocked read guesses the target, the target's lock is acquired,
	// and the read is re-validated under the lock.
	StepSpecLookup
)

// Selector describes which stripes of a lock step's node must be taken for
// one protected edge (§4.4). If All is set, or the executing state does
// not bind Cols, every stripe is taken — "conservatively take all k
// locks".
type Selector struct {
	Cols []string
	All  bool

	// Idx holds the schema indices of Cols (same order), and Mask their
	// bound-column bitmask: the executor hashes row values at Idx to pick
	// a stripe with no column-name resolution. Filled by the planner.
	Idx  []int
	Mask uint64
}

// Step is one operation of a query plan.
type Step struct {
	Kind StepKind

	// Node and lock details for StepLock.
	Node      *decomp.Node
	Mode      locks.Mode
	Selectors []Selector
	// PreSorted records the §5.2 static analysis: the incoming states are
	// already in instance-key order (they were produced by a sorted-scan
	// whose key order coincides with the lock order), so the executor may
	// skip sorting the lock batch.
	PreSorted bool

	// Edge for StepLookup / StepScan / StepSpecLookup.
	Edge *decomp.Edge
	// FilterCols are bound columns checked against scan results.
	FilterCols []string

	// Compiled (schema-resolved) offsets, filled by the planner so the
	// executor touches no column names at run time.
	//
	// ColIdx maps each position of Edge.Cols to its schema index: lookups
	// gather a container key from a row through it, scans scatter a
	// container key's values into a row through it.
	ColIdx []int
	// FilterPos lists the positions within Edge.Cols that scans check
	// against the current row, and FilterIdx the schema indices those
	// positions compare to (aligned with FilterPos).
	FilterPos []int
	FilterIdx []int
	// TargetIdx holds the schema indices of Edge.Dst.A — the target
	// instance key of speculative lookups and scans.
	TargetIdx []int
}

// Plan is a compiled query: a two-phase sequence of lock and access steps
// (the shrinking phase — releasing every lock in reverse order — is
// implicit in the executor, mirroring the matching unlock sequence the
// paper requires).
type Plan struct {
	// Bound lists the columns the operation's input tuple binds (dom s).
	Bound []string
	// Out lists the columns the query returns.
	Out []string
	// Steps in execution order; lock steps appear in decomposition node
	// order, and every access step is preceded by the lock step covering
	// its edge.
	Steps []Step
	// Cost is the planner's heuristic estimate.
	Cost float64
	// LockPortion is the part of Cost attributable to lock acquisition, and
	// AllStripePortion the part of LockPortion spent on all-stripe
	// selectors; BatchCost amortizes them against a BatchProfile.
	LockPortion      float64
	AllStripePortion float64
	// Prog is the compiled round map of the plan's growing phase; its
	// pointer identifies the plan in the batch executor (roundmap.go).
	Prog *RoundProgram

	// Compiled (schema-resolved) boundary data, filled by the planner.
	//
	// BoundMask is the bitmask of the Bound columns — the executor
	// validates and narrows operation inputs with bit tests instead of
	// column-name comparisons.
	BoundMask uint64
	// OutCols is Out sorted and deduplicated, and OutIdx the matching
	// schema indices: result tuples are gathered positionally.
	OutCols []string
	OutIdx  []int
}

// String renders the plan in the paper's let-binding notation, e.g.
//
//	1: let _ = lock(a, ρ) in
//	2: let b = scan(scan(a, ρy), yz) in
//	3: let _ = unlock(a, ρ) in
//	4: b
//
// matching plans (2), (3) and (4) of §5.2.
func (p *Plan) String() string {
	var lines []string
	varName := func(i int) string { return string(rune('a' + i)) }
	cur := 0 // current variable index
	var lockVars []struct {
		v    string
		node string
	}
	expr := "" // pending access expression chain
	flush := func() {
		if expr == "" {
			return
		}
		next := cur + 1
		lines = append(lines, fmt.Sprintf("let %s = %s in", varName(next), expr))
		cur = next
		expr = ""
	}
	for _, s := range p.Steps {
		switch s.Kind {
		case StepLock:
			flush()
			lines = append(lines, fmt.Sprintf("let _ = lock(%s, %s) in", varName(cur), s.Node.Name))
			lockVars = append(lockVars, struct{ v, node string }{varName(cur), s.Node.Name})
		case StepLookup, StepScan, StepSpecLookup:
			op := "lookup"
			if s.Kind == StepScan {
				op = "scan"
			}
			if s.Kind == StepSpecLookup {
				op = "speclookup"
			}
			base := expr
			if base == "" {
				base = varName(cur)
			}
			expr = fmt.Sprintf("%s(%s, %s)", op, base, s.Edge.Name)
		}
	}
	flush()
	result := varName(cur)
	for i := len(lockVars) - 1; i >= 0; i-- {
		lines = append(lines, fmt.Sprintf("let _ = unlock(%s, %s) in", lockVars[i].v, lockVars[i].node))
	}
	lines = append(lines, result)
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%d: %s\n", i+1, l)
	}
	return b.String()
}

// AccessEdges returns the edges the plan traverses, in order.
func (p *Plan) AccessEdges() []*decomp.Edge {
	var es []*decomp.Edge
	for _, s := range p.Steps {
		if s.Kind != StepLock {
			es = append(es, s.Edge)
		}
	}
	return es
}

// Validate checks the §5.2 well-formedness conditions on a compiled plan:
// lock steps appear in decomposition node order, every access step's
// placement lock (or fallback, for speculative edges) is acquired by an
// earlier lock step or by the speculative step itself, and lookups only
// follow edges whose key columns are bound at that point.
func (p *Plan) Validate(pl *locks.Placement) error {
	lockedNodes := map[*decomp.Node]bool{}
	lastLockIndex := -1
	bound := map[string]bool{}
	for _, c := range p.Bound {
		bound[c] = true
	}
	for i, s := range p.Steps {
		switch s.Kind {
		case StepLock:
			if s.Node.Index < lastLockIndex {
				return fmt.Errorf("query: lock step %d on %s violates node lock order", i, s.Node.Name)
			}
			lastLockIndex = s.Node.Index
			lockedNodes[s.Node] = true
		case StepLookup, StepScan:
			r := pl.RuleFor(s.Edge)
			if r.Speculative {
				// Scanning a speculative edge is allowed (the executor
				// takes every fallback stripe and validates each target);
				// a keyed access must use StepSpecLookup.
				if s.Kind != StepScan {
					return fmt.Errorf("query: step %d accesses speculative edge %s without StepSpecLookup", i, s.Edge.Name)
				}
				if !lockedNodes[r.FallbackAt] {
					return fmt.Errorf("query: step %d scans speculative %s before locking fallback %s", i, s.Edge.Name, r.FallbackAt.Name)
				}
			} else if !lockedNodes[r.At] {
				return fmt.Errorf("query: step %d accesses %s before locking its placement %s", i, s.Edge.Name, r.At.Name)
			}
			if s.Kind == StepLookup {
				for _, c := range s.Edge.Cols {
					if !bound[c] {
						return fmt.Errorf("query: step %d looks up %s with unbound column %q", i, s.Edge.Name, c)
					}
				}
			}
			for _, c := range s.Edge.Cols {
				bound[c] = true
			}
		case StepSpecLookup:
			r := pl.RuleFor(s.Edge)
			if !r.Speculative {
				return fmt.Errorf("query: step %d spec-lookups non-speculative edge %s", i, s.Edge.Name)
			}
			if !lockedNodes[r.FallbackAt] {
				return fmt.Errorf("query: step %d spec-lookup of %s before locking fallback %s", i, s.Edge.Name, r.FallbackAt.Name)
			}
			for _, c := range s.Edge.Cols {
				bound[c] = true
			}
		}
	}
	return nil
}
