package query

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// CostModel holds the heuristic constants of the query planner's cost
// estimation function (§5.2). The defaults are deliberately simple: the
// planner only needs to rank alternatives (lookup beats scan, fewer locks
// beat more, striped full-scans are expensive), not predict wall time.
type CostModel struct {
	// Fanout is the assumed number of entries per container.
	Fanout float64
	// LockCost is the cost of acquiring one physical lock.
	LockCost float64
	// ScanEntryCost is the per-entry cost of a scan.
	ScanEntryCost float64
}

// DefaultCostModel returns the standard constants.
func DefaultCostModel() CostModel {
	return CostModel{Fanout: 8, LockCost: 0.3, ScanEntryCost: 0.4}
}

// lookupCost returns the per-state cost of one lookup in a container kind.
func (c CostModel) lookupCost(k container.Kind) float64 {
	switch k {
	case container.TreeMap, container.ConcurrentSkipListMap:
		return 1.5 // logarithmic
	case container.CopyOnWriteMap:
		return 1.2 // binary search
	case container.Cell:
		return 0.5
	default:
		return 1.0 // hash
	}
}

// Planner compiles relational operations against one decomposition and
// lock placement into plans. It is created once per synthesized relation.
type Planner struct {
	D     *decomp.Decomposition
	P     *locks.Placement
	Model CostModel
	// Schema assigns every spec column its dense index; the planner
	// resolves all column names in emitted plans against it, so the
	// executor runs on integer offsets only.
	Schema *rel.Schema
}

// NewPlanner returns a planner over d and p with the default cost model.
func NewPlanner(d *decomp.Decomposition, p *locks.Placement) *Planner {
	return &Planner{D: d, P: p, Model: DefaultCostModel(), Schema: rel.MustSchema(d.Spec.Columns)}
}

// PlanQuery returns the cheapest valid plan answering
// query r s C (§2) for dom(s) = bound and C = out.
// The needed columns (bound ∪ out) determine how deep plans must traverse;
// every root-to-leaf path covers all columns, so plans are downward paths.
func (pl *Planner) PlanQuery(bound, out []string) (*Plan, error) {
	plans, err := pl.EnumerateQueryPlans(bound, out)
	if err != nil {
		return nil, err
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best, nil
}

// EnumerateQueryPlans returns every valid query plan for the signature, in
// enumeration order. At least one plan always exists for a validated
// decomposition.
func (pl *Planner) EnumerateQueryPlans(bound, out []string) ([]*Plan, error) {
	for _, c := range append(append([]string(nil), bound...), out...) {
		if !pl.D.Spec.HasColumn(c) {
			return nil, fmt.Errorf("query: unknown column %q", c)
		}
	}
	needed := rel.ColsUnion(bound, out)
	var plans []*Plan
	var dfs func(n *decomp.Node, boundNow, covered []string, path []*decomp.Edge)
	dfs = func(n *decomp.Node, boundNow, covered []string, path []*decomp.Edge) {
		if rel.ColsSubset(needed, covered) {
			p, err := pl.assemble(bound, out, path, locks.Shared)
			if err == nil {
				plans = append(plans, p)
			}
			return // extending a complete path only adds cost
		}
		for _, e := range n.Out {
			dfs(e.Dst,
				rel.ColsUnion(boundNow, e.Cols),
				rel.ColsUnion(covered, e.Cols),
				append(path, e))
		}
	}
	dfs(pl.D.Root, bound, nil, nil)
	if len(plans) == 0 {
		return nil, fmt.Errorf("query: no valid plan for bound=%v out=%v", bound, out)
	}
	return plans, nil
}

// assemble weaves lock steps into an access path and costs the result.
// Lock steps are emitted at each placement node's position along the path,
// in node order, which satisfies the plan validity conditions by
// construction.
func (pl *Planner) assemble(bound, out []string, path []*decomp.Edge, mode locks.Mode) (*Plan, error) {
	boundSet := map[string]bool{}
	for _, c := range bound {
		boundSet[c] = true
	}
	// For each node on the path (by position), the selectors it must lock.
	type lockReq struct {
		node      *decomp.Node
		selectors []Selector
	}
	reqs := map[*decomp.Node]*lockReq{}
	addReq := func(n *decomp.Node, sel Selector) {
		r, ok := reqs[n]
		if !ok {
			r = &lockReq{node: n}
			reqs[n] = r
		}
		r.selectors = append(r.selectors, sel)
	}
	// Determine per-edge access kind and lock requirement.
	type access struct {
		edge   *decomp.Edge
		kind   StepKind
		filter []string
	}
	accesses := make([]access, 0, len(path))
	boundNow := append([]string(nil), bound...)
	for _, e := range path {
		r := pl.P.RuleFor(e)
		keyed := rel.ColsSubset(e.Cols, boundNow)
		var a access
		switch {
		case r.Speculative && keyed:
			a = access{edge: e, kind: StepSpecLookup}
			addReq(r.FallbackAt, pl.selectorFor(r.FallbackStripeBy, boundSet))
		case r.Speculative:
			a = access{edge: e, kind: StepScan, filter: rel.ColsIntersect(e.Cols, boundNow)}
			// Unkeyed speculative scan: every fallback stripe.
			addReq(r.FallbackAt, Selector{All: true})
		case keyed:
			a = access{edge: e, kind: StepLookup}
			addReq(r.At, pl.selectorFor(r.StripeBy, boundSet))
		default:
			a = access{edge: e, kind: StepScan, filter: rel.ColsIntersect(e.Cols, boundNow)}
			// A scan observes presence and absence of every entry, so it
			// needs all stripes unless the selector is bound per source
			// instance (selector ⊆ A_src, constant across the container).
			sel := pl.selectorFor(r.StripeBy, boundSet)
			if !sel.All && !rel.ColsSubset(r.StripeBy, e.Src.A) && len(rel.ColsMinus(r.StripeBy, bound)) > 0 {
				sel = Selector{All: true}
			}
			addReq(r.At, sel)
		}
		accesses = append(accesses, a)
		boundNow = rel.ColsUnion(boundNow, e.Cols)
	}

	// Weave: walk the path nodes root-down; before each access, emit the
	// lock steps for placement nodes at or before this position.
	plan := &Plan{Bound: bound, Out: out}
	cost := 0.0
	lockPortion, allStripe := 0.0, 0.0
	multiplicity := 1.0
	emitted := map[*decomp.Node]bool{}
	// lastSortedScan tracks the §5.2 sort-elision analysis: true when the
	// current states were produced, from a single predecessor state, by a
	// scan over a sorted container whose edge column order is the sorted
	// column order (so state order coincides with instance-key order).
	// lastScanDst records which node those states instantiate: the elision
	// only applies to a lock step on exactly that node, with one stripe.
	lastSortedScan := false
	var lastScanDst *decomp.Node

	emitLock := func(n *decomp.Node) {
		if emitted[n] {
			return
		}
		r := reqs[n]
		if r == nil {
			return
		}
		emitted[n] = true
		preSorted := lastSortedScan && n == lastScanDst && pl.P.StripeCount(n) == 1
		step := Step{Kind: StepLock, Node: n, Mode: mode, Selectors: r.selectors, PreSorted: preSorted}
		plan.Steps = append(plan.Steps, step)
		// Lock cost: one lock per state, or all stripes when unselective.
		stripes := 1.0
		anyAll := false
		for _, s := range r.selectors {
			if s.All {
				stripes = float64(pl.P.StripeCount(n))
				anyAll = true
			}
		}
		c := pl.Model.LockCost * multiplicity * stripes
		cost += c
		lockPortion += c
		if anyAll {
			allStripe += c
		}
	}

	emitLock(pl.D.Root)
	for _, a := range accesses {
		e := a.edge
		r := pl.P.RuleFor(e)
		// Placement node for this edge must be locked before the access.
		if r.Speculative {
			emitLock(r.FallbackAt)
		} else {
			emitLock(r.At)
		}
		switch a.kind {
		case StepLookup:
			plan.Steps = append(plan.Steps, Step{Kind: StepLookup, Edge: e})
			cost += pl.Model.lookupCost(e.Container) * multiplicity
			lastSortedScan = false
		case StepSpecLookup:
			plan.Steps = append(plan.Steps, Step{Kind: StepSpecLookup, Edge: e, Mode: mode})
			cost += (pl.Model.lookupCost(e.Container) + pl.Model.LockCost) * multiplicity
			lockPortion += pl.Model.LockCost * multiplicity
			lastSortedScan = false
		case StepScan:
			plan.Steps = append(plan.Steps, Step{Kind: StepScan, Edge: e, FilterCols: a.filter})
			fan := pl.Model.Fanout
			if e.Container == container.Cell {
				fan = 1
			}
			cost += pl.Model.ScanEntryCost * multiplicity * fan
			sorted := container.PropertiesOf(e.Container).SortedScan && colsAreSorted(e.Cols)
			lastSortedScan = sorted && multiplicity == 1
			lastScanDst = e.Dst
			if len(a.filter) == 0 {
				multiplicity *= fan
			}
			// Filtered scans keep roughly one match per source state, so
			// the multiplicity is unchanged.
			if r.Speculative {
				// Each surviving entry's target lock is validated.
				cost += pl.Model.LockCost * multiplicity
				lockPortion += pl.Model.LockCost * multiplicity
			}
		}
	}
	plan.Cost = cost
	plan.LockPortion, plan.AllStripePortion = lockPortion, allStripe
	if err := plan.Validate(pl.P); err != nil {
		return nil, err
	}
	pl.compilePlan(plan)
	return plan, nil
}

// selectorFor builds a stripe selector given the statically bound columns:
// selectors whose columns are not all bound degrade to All.
func (pl *Planner) selectorFor(stripeBy []string, bound map[string]bool) Selector {
	for _, c := range stripeBy {
		if !bound[c] {
			return Selector{All: true}
		}
	}
	cols := append([]string(nil), stripeBy...)
	return Selector{Cols: cols, Idx: pl.Schema.Indices(cols), Mask: pl.Schema.Mask(cols)}
}

// colsAreSorted reports whether the edge's column order equals the sorted
// column order, the condition under which a sorted container scan yields
// states in instance-key order (§5.2's sort-elision analysis).
func colsAreSorted(cols []string) bool {
	for i := 1; i < len(cols); i++ {
		if cols[i-1] > cols[i] {
			return false
		}
	}
	return true
}
