package query

import (
	"fmt"
	"strings"

	"repro/internal/locks"
)

// This file renders the compiled (schema-resolved) form of plans: the
// integer offsets the executor actually runs on, as opposed to the
// paper-notation rendering of Plan.String. cmd/crsexplain prints this so
// the ARCHITECTURE.md worked example can be reproduced from the CLI.

// Describe renders the plan's compiled detail: the bound-column mask, the
// output projection offsets, and per step the resolved column, filter,
// target and stripe-selector offsets.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiled plan: bound=%v mask=%#x out=%v outIdx=%v cost=%.2f\n",
		p.Bound, p.BoundMask, p.OutCols, p.OutIdx, p.Cost)
	for i := range p.Steps {
		fmt.Fprintf(&b, "  %2d: %s\n", i+1, describeStep(&p.Steps[i]))
	}
	return b.String()
}

// describeStep renders one step's compiled fields.
func describeStep(s *Step) string {
	switch s.Kind {
	case StepLock:
		return fmt.Sprintf("lock %s %v %s%s", s.Node.Name, describeSelectors(s.Selectors), s.Mode, presorted(s.PreSorted))
	case StepLookup:
		return fmt.Sprintf("lookup %s colIdx=%v", s.Edge.Name, s.ColIdx)
	case StepScan:
		return fmt.Sprintf("scan %s colIdx=%v filterPos=%v filterIdx=%v", s.Edge.Name, s.ColIdx, s.FilterPos, s.FilterIdx)
	case StepSpecLookup:
		return fmt.Sprintf("speclookup %s colIdx=%v targetIdx=%v %s", s.Edge.Name, s.ColIdx, s.TargetIdx, s.Mode)
	case StepCount:
		return fmt.Sprintf("count %s (sum container sizes)", s.Edge.Name)
	default:
		return fmt.Sprintf("step kind %d", s.Kind)
	}
}

// presorted annotates the §5.2 sort-elision flag.
func presorted(on bool) string {
	if on {
		return " presorted"
	}
	return ""
}

// describeSelectors renders stripe selectors with their compiled indices.
func describeSelectors(sels []Selector) string {
	if len(sels) == 0 {
		return "[]"
	}
	parts := make([]string, len(sels))
	for i, s := range sels {
		if s.All {
			parts[i] = "all-stripes"
			continue
		}
		if len(s.Cols) == 0 {
			parts[i] = "stripe0"
			continue
		}
		parts[i] = fmt.Sprintf("hash(%s)@%v", strings.Join(s.Cols, ","), s.Idx)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Describe renders the mutation plan's compiled per-node directives.
func (m *MutationPlan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiled %s plan: bound=%v mask=%#x cost=%.2f\n", m.Kind, m.Bound, m.BoundMask, m.Cost)
	for i := range m.PerNode {
		nd := &m.PerNode[i]
		fmt.Fprintf(&b, "  node %s:", nd.Node.Name)
		if nd.AccessIn != nil {
			verb := "lookup"
			if nd.AccessScan {
				verb = "scan"
			}
			fmt.Fprintf(&b, " %s(%s colIdx=%v", verb, nd.AccessIn.Name, nd.ColIdx)
			if len(nd.FilterPos) > 0 {
				fmt.Fprintf(&b, " filterPos=%v filterIdx=%v", nd.FilterPos, nd.FilterIdx)
			}
			b.WriteString(")")
		}
		for j, e := range nd.SpecIns {
			fmt.Fprintf(&b, " speclookup(%s colIdx=%v targetIdx=%v)", e.Name, nd.SpecColIdx[j], nd.SpecTargetIdx[j])
		}
		if len(nd.Selectors) > 0 {
			fmt.Fprintf(&b, " lock %v %s", describeSelectors(nd.Selectors), locks.Exclusive)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DescribeRounds renders the plan's compiled round map: the flat,
// pre-classified schedule the batched growing phase walks instead of
// re-inspecting steps (roundmap.go). Gates are lock-order node indices.
func (p *Plan) DescribeRounds() string {
	if p.Prog == nil {
		return "rounds: none compiled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "round map (%d rounds):\n", len(p.Prog.Rounds))
	for i, rd := range p.Prog.Rounds {
		switch rd.Kind {
		case RoundSteps:
			fmt.Fprintf(&b, "  %2d: steps %d..%d\n", i+1, rd.Lo+1, rd.Hi)
		case RoundLock:
			fmt.Fprintf(&b, "  %2d: lock step %d, gate node %d\n", i+1, rd.Lo+1, rd.Gate)
		case RoundSpec:
			fmt.Fprintf(&b, "  %2d: speculative step %d, gate node %d\n", i+1, rd.Lo+1, rd.Gate)
		}
	}
	return b.String()
}

// DescribeRounds renders the mutation plan's compiled round map: one to
// four pre-classified rounds per growing-phase directive.
func (m *MutationPlan) DescribeRounds() string {
	if m.Prog == nil {
		return "rounds: none compiled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "round map (%d rounds):\n", len(m.Prog.Rounds))
	for i, rd := range m.Prog.Rounds {
		kind := map[MutationRoundKind]string{
			MRoundSpecIn: "speculative in-edges",
			MRoundLocate: "locate via resolved targets",
			MRoundAccess: "plain access",
			MRoundExist:  "existence check",
			MRoundLock:   "exclusive locks",
		}[rd.Kind]
		fmt.Fprintf(&b, "  %2d: %s, directive %d, gate node %d\n", i+1, kind, rd.Dir+1, rd.Gate)
	}
	return b.String()
}
