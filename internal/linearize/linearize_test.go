package linearize

import (
	"testing"

	"repro/internal/rel"
)

func ins(c int, s, t rel.Tuple, ret bool, start, end int64) Operation {
	return Operation{Client: c, Kind: "insert", Args: []any{s, t}, Ret: ret, Start: start, End: end}
}

func rem(c int, s rel.Tuple, ret bool, start, end int64) Operation {
	return Operation{Client: c, Kind: "remove", Args: []any{s}, Ret: ret, Start: start, End: end}
}

func qry(c int, s rel.Tuple, out []string, ret []rel.Tuple, start, end int64) Operation {
	return Operation{Client: c, Kind: "query", Args: []any{s, out}, Ret: ret, Start: start, End: end}
}

func key(src, dst int) rel.Tuple         { return rel.T("src", src, "dst", dst) }
func wgt(w int) rel.Tuple                { return rel.T("weight", w) }
func full(s, d, w int) rel.Tuple         { return rel.T("src", s, "dst", d, "weight", w) }
func outAll() []string                   { return []string{"dst", "src", "weight"} }
func tuples(ts ...rel.Tuple) []rel.Tuple { return ts }

func TestEmptyHistory(t *testing.T) {
	if !Check(RelationModel(), nil) {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	h := []Operation{
		ins(0, key(1, 2), wgt(5), true, 0, 1),
		qry(0, rel.T("src", 1), outAll(), tuples(full(1, 2, 5)), 2, 3),
		rem(0, key(1, 2), true, 4, 5),
		qry(0, rel.T("src", 1), outAll(), nil, 6, 7),
	}
	if !Check(RelationModel(), h) {
		t.Fatal("sequential history must be linearizable")
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	h := []Operation{
		ins(0, key(1, 2), wgt(5), true, 0, 1),
		ins(0, key(1, 2), wgt(9), false, 2, 3),
	}
	if !Check(RelationModel(), h) {
		t.Fatal("put-if-absent semantics should check out")
	}
	// Claiming the second insert succeeded is NOT linearizable.
	h[1].Ret = true
	if Check(RelationModel(), h) {
		t.Fatal("double-success must not be linearizable")
	}
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	// Two overlapping inserts of the same key: exactly one may win, in
	// either order.
	winnerFirst := []Operation{
		ins(0, key(1, 1), wgt(1), true, 0, 10),
		ins(1, key(1, 1), wgt(2), false, 1, 9),
	}
	if !Check(RelationModel(), winnerFirst) {
		t.Fatal("overlapping inserts, first wins: linearizable")
	}
	winnerSecond := []Operation{
		ins(0, key(1, 1), wgt(1), false, 0, 10),
		ins(1, key(1, 1), wgt(2), true, 1, 9),
	}
	if !Check(RelationModel(), winnerSecond) {
		t.Fatal("overlapping inserts, second wins: linearizable")
	}
	bothWin := []Operation{
		ins(0, key(1, 1), wgt(1), true, 0, 10),
		ins(1, key(1, 1), wgt(2), true, 1, 9),
	}
	if Check(RelationModel(), bothWin) {
		t.Fatal("both winning must not be linearizable")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Insert completes strictly before a query begins: the query MUST see
	// the tuple.
	h := []Operation{
		ins(0, key(1, 2), wgt(5), true, 0, 1),
		qry(1, rel.T("src", 1), outAll(), nil, 5, 6), // claims empty
	}
	if Check(RelationModel(), h) {
		t.Fatal("stale read after completed insert must not be linearizable")
	}
	// But if they overlap, the empty read is allowed.
	h[1].Start, h[1].End = 0, 6
	if !Check(RelationModel(), h) {
		t.Fatal("overlapping read may miss the insert")
	}
}

func TestQueryMultisetComparison(t *testing.T) {
	h := []Operation{
		ins(0, key(1, 2), wgt(5), true, 0, 1),
		ins(0, key(1, 3), wgt(6), true, 2, 3),
		// Result listed in the "wrong" order must still check out.
		qry(1, rel.T("src", 1), []string{"dst"}, tuples(rel.T("dst", 3), rel.T("dst", 2)), 4, 5),
	}
	if !Check(RelationModel(), h) {
		t.Fatal("query result order must not matter")
	}
}

func TestRemoveObservedConcurrently(t *testing.T) {
	// insert ─ complete; then remove and query overlap: query may see the
	// tuple or not, but remove must report true.
	base := []Operation{ins(0, key(7, 8), wgt(1), true, 0, 1)}
	sawIt := append(base,
		rem(0, key(7, 8), true, 10, 20),
		qry(1, rel.T("src", 7), []string{"dst"}, tuples(rel.T("dst", 8)), 11, 19))
	if !Check(RelationModel(), sawIt) {
		t.Fatal("query ordered before remove: linearizable")
	}
	missedIt := append(base,
		rem(0, key(7, 8), true, 10, 20),
		qry(1, rel.T("src", 7), []string{"dst"}, nil, 11, 19))
	if !Check(RelationModel(), missedIt) {
		t.Fatal("query ordered after remove: linearizable")
	}
	// A remove reporting false while the tuple provably exists is not.
	badRemove := append(base, rem(0, key(7, 8), false, 10, 20))
	if Check(RelationModel(), badRemove) {
		t.Fatal("remove of existing tuple must not report false")
	}
}

func TestThreeWayInterleaving(t *testing.T) {
	// A classic ABA-ish shape: insert, concurrent remove+insert, final
	// query sees the second weight.
	h := []Operation{
		ins(0, key(1, 1), wgt(1), true, 0, 1),
		rem(1, key(1, 1), true, 2, 8),
		ins(2, key(1, 1), wgt(2), true, 3, 9),
		qry(0, rel.T("src", 1, "dst", 1), []string{"weight"}, tuples(rel.T("weight", 2)), 10, 11),
	}
	if !Check(RelationModel(), h) {
		t.Fatal("remove-then-reinsert interleaving must be linearizable")
	}
	// Seeing weight 1 at the end is impossible: the re-insert can only
	// succeed after the remove, both complete before the query.
	h[3] = qry(0, rel.T("src", 1, "dst", 1), []string{"weight"}, tuples(rel.T("weight", 1)), 10, 11)
	if Check(RelationModel(), h) {
		t.Fatal("stale weight must not be linearizable")
	}
}

func TestCheckerStringer(t *testing.T) {
	op := ins(3, key(1, 2), wgt(5), true, 7, 9)
	if op.String() == "" {
		t.Fatal("empty op string")
	}
}
