// Package linearize implements a Wing–Gong style linearizability checker.
// The paper's compiler guarantees that relational operations are
// linearizable (§2, [15]); this package checks that claim on concrete
// concurrent histories recorded against synthesized relations: a history
// is linearizable iff there is a total order of the operations, consistent
// with their real-time invocation/response intervals, under which every
// operation returns what the sequential specification dictates.
package linearize

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/rel"
)

// Operation is one completed operation in a concurrent history.
type Operation struct {
	// Client identifies the issuing thread (diagnostic only).
	Client int
	// Kind names the operation ("insert", "remove", "query", …).
	Kind string
	// Args are the operation inputs, interpreted by the Model.
	Args []any
	// Ret is the observed return value.
	Ret any
	// Start and End are the invocation and response timestamps; any
	// monotonic clock works as long as all operations share it.
	Start, End int64
}

// String renders the operation compactly for diagnostics.
func (o Operation) String() string {
	return fmt.Sprintf("[c%d %s%v -> %v @%d..%d]", o.Client, o.Kind, o.Args, o.Ret, o.Start, o.End)
}

// Model is a sequential specification: a functional state machine with
// canonical state fingerprints (used to memoize the search).
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies op's inputs to the state, returning the successor
	// state and the return value the sequential specification expects.
	// Step must not mutate its input state.
	Step func(state any, op Operation) (next any, ret any)
	// Fingerprint canonicalizes a state for memoization.
	Fingerprint func(state any) string
	// RetEqual compares an expected return value with an observed one.
	RetEqual func(expected, observed any) bool
}

// Check reports whether the history is linearizable with respect to the
// model. Histories are limited to 64 operations (the search uses a
// bitmask); recorded test histories are far smaller.
func Check(m Model, history []Operation) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	if n > 64 {
		panic("linearize: history longer than 64 operations")
	}
	ops := append([]Operation(nil), history...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })

	full := uint64(1)<<n - 1
	memo := map[string]bool{}
	var dfs func(remaining uint64, state any) bool
	dfs = func(remaining uint64, state any) bool {
		if remaining == 0 {
			return true
		}
		key := fmt.Sprintf("%x|%s", remaining, m.Fingerprint(state))
		if seen, ok := memo[key]; ok {
			return seen
		}
		// An operation may linearize first only if no other remaining
		// operation completed before it began.
		minEnd := int64(1<<63 - 1)
		for r := remaining; r != 0; r &= r - 1 {
			i := bits.TrailingZeros64(r)
			if ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		ok := false
		for r := remaining; r != 0; r &= r - 1 {
			i := bits.TrailingZeros64(r)
			if ops[i].Start > minEnd {
				continue
			}
			next, expected := m.Step(state, ops[i])
			if !m.RetEqual(expected, ops[i].Ret) {
				continue
			}
			if dfs(remaining&^(1<<i), next) {
				ok = true
				break
			}
		}
		memo[key] = ok
		return ok
	}
	return dfs(full, m.Init())
}

// relState is the canonical relation state used by RelationModel: a sorted
// tuple slice treated immutably.
type relState []rel.Tuple

func (s relState) clone() relState {
	return append(relState(nil), s...)
}

func (s relState) fingerprint() string {
	var b strings.Builder
	for _, t := range s {
		b.WriteString(t.String())
		b.WriteByte(';')
	}
	return b.String()
}

// RelationModel returns the sequential specification of a concurrent
// relation (§2) for use with Check. Operations:
//
//	{Kind: "insert", Args: []any{s, t rel.Tuple}, Ret: bool}
//	{Kind: "remove", Args: []any{s rel.Tuple}, Ret: bool}
//	{Kind: "query",  Args: []any{s rel.Tuple, out []string}, Ret: []rel.Tuple}
//
// Query results are compared as multisets (order independent).
func RelationModel() Model {
	return Model{
		Init: func() any { return relState(nil) },
		Step: func(state any, op Operation) (any, any) {
			s := state.(relState)
			switch op.Kind {
			case "insert":
				key := op.Args[0].(rel.Tuple)
				val := op.Args[1].(rel.Tuple)
				for _, t := range s {
					if t.Extends(key) {
						return s, false
					}
				}
				next := s.clone()
				next = append(next, key.MustUnion(val))
				sort.Slice(next, func(i, j int) bool { return next[i].Compare(next[j]) < 0 })
				return next, true
			case "remove":
				key := op.Args[0].(rel.Tuple)
				next := relState(nil)
				removed := false
				for _, t := range s {
					if t.Extends(key) {
						removed = true
						continue
					}
					next = append(next, t)
				}
				if !removed {
					return s, false
				}
				return next, true
			case "query":
				key := op.Args[0].(rel.Tuple)
				out := op.Args[1].([]string)
				var res []rel.Tuple
				for _, t := range s {
					if t.Extends(key) {
						res = append(res, t.Project(out))
					}
				}
				sort.Slice(res, func(i, j int) bool { return res[i].Compare(res[j]) < 0 })
				return s, res
			default:
				panic("linearize: unknown operation " + op.Kind)
			}
		},
		Fingerprint: func(state any) string { return state.(relState).fingerprint() },
		RetEqual: func(expected, observed any) bool {
			switch e := expected.(type) {
			case bool:
				o, ok := observed.(bool)
				return ok && e == o
			case []rel.Tuple:
				o, ok := observed.([]rel.Tuple)
				if !ok || len(e) != len(o) {
					return false
				}
				os := append([]rel.Tuple(nil), o...)
				sort.Slice(os, func(i, j int) bool { return os[i].Compare(os[j]) < 0 })
				for i := range e {
					if !e[i].Equal(os[i]) {
						return false
					}
				}
				return true
			default:
				return false
			}
		},
	}
}
