package crs

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
)

// TestRoundMapTraceDifferential pins the round-map batch scheduler
// against the generic cursor machine it replaced: the same deterministic
// stream of composite batches, run once with round maps on and once off,
// must produce byte-identical lock-schedule traces (same rounds, same
// coalesced IDs, same modes, same request counts), identical member
// results and identical final contents on every benchmark variant. The
// round walkers are supposed to be the cursor machine move for move —
// this is the test that makes "supposed to" enforceable.
func TestRoundMapTraceDifferential(t *testing.T) {
	for _, name := range []string{"Stick 1", "Split 4", "Diamond Spec"} {
		t.Run(name, func(t *testing.T) {
			on := runTracedScript(t, name, true)
			off := runTracedScript(t, name, false)
			if len(on) != len(off) {
				t.Fatalf("round maps on produced %d trace lines, off %d", len(on), len(off))
			}
			for i := range on {
				if on[i] != off[i] {
					t.Fatalf("batch %d diverges:\nround maps ON:\n%s\nround maps OFF:\n%s", i, on[i], off[i])
				}
			}
		})
	}
}

// runTracedScript executes a fixed script of composite batches against a
// fresh build of the named variant and returns one rendered record per
// batch — the BatchTrace rendering followed by every member result — plus
// a final sorted-snapshot record.
func runTracedScript(t *testing.T, variant string, roundMaps bool) []string {
	t.Helper()
	prev := core.SetRoundMaps(roundMaps)
	defer core.SetRoundMaps(prev)
	v, err := GraphVariantByName(variant)
	if err != nil {
		t.Fatal(err)
	}
	r, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	state := uint64(0xC0FFEE)
	for n := 0; n < 200; n++ {
		u := splitmixDiff(&state)
		a := int64(u % 64)
		b := int64((u >> 16) % 64)
		c := int64((u >> 32) % 64)
		w := int64(u >> 48)
		var tr *core.BatchTrace
		var pb1, pb2 *Pending[bool]
		var pi1, pi2 *Pending[int]
		var pq *Pending[[]Tuple]
		err := r.Batch(func(tx *Txn) error {
			tx.EnableTrace()
			tr = tx.Trace()
			var err error
			switch u % 4 {
			case 0: // insert pair
				if pb1, err = tx.Insert(T("src", a, "dst", b), T("weight", w)); err != nil {
					return err
				}
				pb2, err = tx.Insert(T("src", a, "dst", c), T("weight", w+1))
			case 1: // move
				if pb1, err = tx.Remove(T("src", a, "dst", b)); err != nil {
					return err
				}
				pb2, err = tx.Insert(T("src", a, "dst", c), T("weight", w))
			case 2: // count pair
				if pi1, err = tx.Count(T("src", a)); err != nil {
					return err
				}
				pi2, err = tx.Count(T("src", b))
			default: // successor query
				pq, err = tx.Query(T("src", a), "dst", "weight")
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		var res string
		switch u % 4 {
		case 0, 1:
			res = fmt.Sprintf("bool %v %v", pb1.Value(), pb2.Value())
		case 2:
			res = fmt.Sprintf("count %d %d", pi1.Value(), pi2.Value())
		default:
			rows := pq.Value()
			sortTupleList(rows)
			res = fmt.Sprintf("query %v", rows)
		}
		out = append(out, tr.String()+res)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sortTupleList(snap)
	out = append(out, fmt.Sprintf("snapshot %d rows: %v", len(snap), snap))
	return out
}

func sortTupleList(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// splitmixDiff is the usual splitmix64 draw, local to this test so the
// script stays frozen even if shared helpers change.
func splitmixDiff(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
