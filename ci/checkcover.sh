#!/usr/bin/env bash
# Coverage gate for the packages carrying the locking and optimistic-epoch
# machinery: fail when statement coverage drops below the committed floor.
# The floors are set a couple of points under the measured coverage at the
# time they were last raised (core 87.7%, locks 91.8%, after the mixed-batch
# OCC commit path landed with its retry/fallback/self-hold suites), so
# routine changes don't flake but untested additions to the epoch/validation
# protocol fail loudly. Raise the floor when coverage improves; never lower
# it to make a PR pass.
set -euo pipefail

declare -A floors=(
  ["./internal/core/"]=85.5
  ["./internal/locks/"]=89.5
)

status=0
for pkg in "${!floors[@]}"; do
  floor=${floors[$pkg]}
  out=$(go test -cover "$pkg")
  echo "$out"
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' | head -1)
  if [ -z "$pct" ]; then
    echo "FAIL $pkg: no coverage figure in test output" >&2
    status=1
    continue
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "FAIL $pkg: coverage ${pct}% is below the committed floor ${floor}%" >&2
    status=1
  else
    echo "ok   $pkg: coverage ${pct}% >= floor ${floor}%"
  fi
done
exit $status
